"""Tests for the transport-free atom query service and shard routing."""

import pytest

from repro.net.prefix import AF_INET, AF_INET6, Prefix
from repro.serve.cache import ResponseCache
from repro.serve.service import (
    AtomQueryService,
    QueryError,
    ShardRouter,
    covering_prefix,
)


def p(text):
    return Prefix.parse(text)


class TestCoveringPrefix:
    def test_single_prefix_range(self):
        assert covering_prefix(p("10.0.0.0/8"), p("10.0.0.0/8")) == p(
            "10.0.0.0/8"
        )

    def test_sibling_endpoints(self):
        cover = covering_prefix(p("10.0.0.0/9"), p("10.128.0.0/9"))
        assert cover == p("10.0.0.0/8")

    def test_contains_both_endpoints(self):
        first, last = p("10.1.0.0/16"), p("10.200.0.0/24")
        cover = covering_prefix(first, last)
        assert cover.contains(first) and cover.contains(last)

    def test_disjoint_range_degrades_to_default_route(self):
        cover = covering_prefix(p("1.0.0.0/8"), p("200.0.0.0/8"))
        assert cover.length == 0
        assert cover == Prefix.from_host_bits(AF_INET, 0, 0)

    def test_capped_by_endpoint_lengths(self):
        # Endpoints share 16 leading bits but the first is only a /8:
        # the cover cannot be longer than the shortest endpoint or it
        # would not contain it.
        cover = covering_prefix(p("10.0.0.0/8"), p("10.0.255.0/24"))
        assert cover.contains(p("10.0.0.0/8"))
        assert cover.length <= 8

    def test_family_mismatch_rejected(self):
        with pytest.raises(ValueError):
            covering_prefix(p("10.0.0.0/8"), p("2001:db8::/32"))

    def test_v6(self):
        cover = covering_prefix(p("2001:db8::/32"), p("2001:db8:ffff::/48"))
        assert cover.family == AF_INET6
        assert cover.contains(p("2001:db8:1234::/48"))


class TestShardRouter:
    def test_route_equals_linear_scan(self, served_store):
        """Trie routing returns exactly the shards a full scan keeps."""
        for entry in served_store.snapshots():
            router = ShardRouter(entry)
            probes = [shard.first for shard in entry.shards]
            probes += [shard.last for shard in entry.shards]
            probes += [p("0.0.0.0/0"), p("255.255.255.255/32")]
            for probe in probes:
                routed = router.route(probe)
                expected = [
                    shard for shard in entry.shards if shard.covers(probe)
                ]
                assert routed == expected, (entry.key, str(probe))

    def test_route_all_stored_prefixes(self, served_store):
        """Every stored prefix routes to at least its own shard."""
        entry = served_store.snapshots()[0]
        router = ShardRouter(entry)
        for prefix in served_store.atoms(entry.key).by_prefix:
            assert any(
                shard.covers(prefix) for shard in router.route(prefix)
            ), str(prefix)

    def test_unknown_family_routes_nowhere(self, served_store):
        entry = served_store.snapshots()[0]
        families = {shard.first.family for shard in entry.shards}
        if AF_INET6 in families:
            pytest.skip("store has v6 shards")
        assert ShardRouter(entry).route(p("2001:db8::/32")) == []


@pytest.fixture(scope="module")
def service(served_store):
    return AtomQueryService(served_store, cache=ResponseCache(64))


class TestPrefixQuery:
    def test_parity_with_direct_store_query(self, served_store, service):
        entry = served_store.snapshots()[0]
        for prefix in list(served_store.atoms(entry.key).by_prefix)[:25]:
            direct = served_store.query(prefix, key=entry.key)
            answer = service.prefix_query(str(prefix))
            assert answer["atom"]["id"] == direct.atom_id
            assert answer["location"] == {
                "shard": direct.shard,
                "row": direct.row,
            }
            paths = [row["path"] for row in answer["atom"]["paths"]]
            assert paths == [
                None if path is None else str(path) for path in direct.paths
            ]

    def test_absent_prefix(self, service):
        answer = service.prefix_query("203.0.113.0/24")
        assert answer["atom"] is None and answer["location"] is None
        assert answer["stability"]["present"] == 0

    def test_history_covers_every_snapshot(self, served_store, service):
        entries = served_store.snapshots()
        prefix = next(iter(served_store.atoms(entries[0].key).by_prefix))
        answer = service.prefix_query(str(prefix))
        assert [row["snapshot"] for row in answer["history"]] == [
            entry.key for entry in entries
        ]
        assert answer["stability"]["snapshots"] == len(entries)
        assert 0 < answer["stability"]["present"] <= len(entries)

    def test_snapshot_parameter(self, served_store, service):
        entry = served_store.snapshots()[-1]
        prefix = next(iter(served_store.atoms(entry.key).by_prefix))
        answer = service.prefix_query(str(prefix), snapshot=entry.key)
        assert answer["snapshot"] == entry.key
        direct = served_store.query(prefix, key=entry.key)
        assert answer["atom"]["id"] == direct.atom_id

    def test_invalid_prefix_is_400(self, service):
        with pytest.raises(QueryError) as info:
            service.prefix_query("banana")
        assert info.value.status == 400

    def test_unknown_snapshot_is_404(self, service):
        with pytest.raises(QueryError) as info:
            service.prefix_query("10.0.0.0/8", snapshot="nope")
        assert info.value.status == 404

    def test_responses_are_cached(self, served_store):
        cache = ResponseCache(16)
        service = AtomQueryService(served_store, cache=cache)
        entry = served_store.snapshots()[0]
        prefix = next(iter(served_store.atoms(entry.key).by_prefix))
        first = service.prefix_query(str(prefix))
        hits_before = cache.stats()["hits"]
        second = service.prefix_query(str(prefix))
        assert second == first
        assert cache.stats()["hits"] == hits_before + 1


class TestAtomQuery:
    def test_members_match_store(self, served_store, service):
        entry = served_store.snapshots()[0]
        atoms = served_store.atoms(entry.key)
        atom = atoms.atoms[0]
        answer = service.atom_query(0)
        assert answer["atom"]["size"] == atom.size
        assert set(answer["atom"]["prefixes"]) == {
            str(prefix) for prefix in atom.prefixes
        }
        assert answer["atom"]["origins"] == sorted(atom.origins())

    def test_timeline_spans_base_snapshots(self, served_store, service):
        bases = [
            entry
            for entry in served_store.snapshots()
            if entry.role == "base"
        ]
        answer = service.atom_query(0)
        assert [row["snapshot"] for row in answer["timeline"]] == [
            entry.key for entry in bases
        ]
        # In its own snapshot the atom is by definition intact and
        # spans exactly one atom.
        own = next(
            row
            for row in answer["timeline"]
            if row["snapshot"] == answer["snapshot"]
        )
        assert own["intact"] and own["atoms_spanned"] == 1
        assert own["present"] == answer["atom"]["size"]

    def test_out_of_range_is_404(self, served_store, service):
        entry = served_store.snapshots()[0]
        for bad in (-1, entry.atom_count, entry.atom_count + 17):
            with pytest.raises(QueryError) as info:
                service.atom_query(bad)
            assert info.value.status == 404


class TestStats:
    def test_shape_matches_manifest(self, served_store, service):
        entries = served_store.snapshots()
        bases = [entry for entry in entries if entry.role == "base"]
        answer = service.stats()
        assert answer["store"]["version"] == served_store.manifest_digest()
        assert answer["store"]["snapshots"] == len(entries)
        assert answer["store"]["base_snapshots"] == len(bases)
        assert [row["key"] for row in answer["snapshots"]] == [
            entry.key for entry in entries
        ]
        for row, entry in zip(answer["snapshots"], entries):
            assert row["atoms"] == entry.atom_count
            assert row["prefixes"] == entry.prefixes

    def test_series(self, served_store, service):
        bases = [
            entry
            for entry in served_store.snapshots()
            if entry.role == "base"
        ]
        answer = service.stats()
        series = answer["series"]
        assert series["atom_counts"] == [
            [entry.year, entry.atom_count] for entry in bases
        ]
        assert len(series["splits"]) == len(bases) - 1
        assert len(series["merges"]) == len(bases) - 1
        for year, count in series["splits"] + series["merges"]:
            assert count >= 0 and year == bases[-1].year

    def test_deterministic(self, service):
        assert service.stats() == service.stats()


class TestVersion:
    def test_version_is_manifest_digest(self, served_store, service):
        assert service.version == served_store.manifest_digest()
        assert len(service.version) == 64
