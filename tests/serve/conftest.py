"""Shared fixtures for the serve tests: one small on-disk store.

The store is built once per session by the same sweep the store
pipeline tests use (two years, base + stability roles) and treated as
read-only by every test; anything that needs a broken store copies or
builds its own.
"""

import pytest

from repro.analysis.longitudinal import LongitudinalStudy
from repro.engine.scheduler import ExecutionEngine
from repro.simulation.scenario import SimulatedInternet
from repro.store import AtomStore
from repro.topology.evolution import WorldParams

WORLD = WorldParams(
    seed=5,
    as_scale=1 / 400.0,
    prefix_scale=1 / 400.0,
    peer_scale=0.03,
    collector_scale=0.3,
    min_fullfeed_peers=8,
)

YEARS = [2006, 2007]


@pytest.fixture(scope="session")
def served_store_dir(tmp_path_factory):
    store_dir = tmp_path_factory.mktemp("serve") / "store"
    study = LongitudinalStudy(
        SimulatedInternet(WORLD, start=f"{YEARS[0]}-01-01"),
        engine=ExecutionEngine(),
        store_dir=str(store_dir),
    )
    study.run_years(YEARS)
    return store_dir


@pytest.fixture(scope="session")
def served_store(served_store_dir):
    with AtomStore(str(served_store_dir)) as store:
        yield store
