"""Tests for the asyncio HTTP transport: parity, caching headers, lifecycle."""

import http.client
import json
import socket

import pytest

from repro.serve import encode_body, etag_for, serve_in_thread


@pytest.fixture(scope="module")
def server(served_store_dir):
    with serve_in_thread(str(served_store_dir)) as handle:
        yield handle


@pytest.fixture()
def connection(server):
    conn = http.client.HTTPConnection(server.host, server.port, timeout=30)
    yield conn
    conn.close()


def fetch(connection, target, headers=None, method="GET"):
    connection.request(method, target, headers=headers or {})
    response = connection.getresponse()
    return response.status, dict(response.getheaders()), response.read()


class TestEncodeBody:
    def test_canonical_json(self):
        body = encode_body({"b": 1, "a": [1, 2]})
        assert body == b'{"a":[1,2],"b":1}\n'

    def test_key_order_irrelevant(self):
        assert encode_body({"a": 1, "b": 2}) == encode_body({"b": 2, "a": 1})


class TestEtagFor:
    def test_combines_version_and_content(self):
        etag = etag_for("f" * 64, b"body")
        assert etag.startswith('"' + "f" * 16 + "-")
        assert etag.endswith('"')

    def test_body_changes_etag(self):
        version = "a" * 64
        assert etag_for(version, b"x") != etag_for(version, b"y")

    def test_version_changes_etag(self):
        assert etag_for("a" * 64, b"x") != etag_for("b" * 64, b"x")


class TestParity:
    """The wire bytes are exactly ``encode_body(service result)``."""

    def test_prefix_endpoint(self, server, connection, served_store):
        entry = served_store.snapshots()[0]
        for prefix in list(served_store.atoms(entry.key).by_prefix)[:10]:
            status, _, body = fetch(connection, f"/v1/prefix/{prefix}")
            assert status == 200
            assert body == encode_body(
                server.service.prefix_query(str(prefix))
            )

    def test_atom_endpoint(self, server, connection):
        status, _, body = fetch(connection, "/v1/atom/0")
        assert status == 200
        assert body == encode_body(server.service.atom_query(0))

    def test_stats_endpoint(self, server, connection):
        status, _, body = fetch(connection, "/v1/stats")
        assert status == 200
        assert body == encode_body(server.service.stats())

    def test_snapshot_query_parameter(
        self, server, connection, served_store
    ):
        entry = served_store.snapshots()[-1]
        prefix = next(iter(served_store.atoms(entry.key).by_prefix))
        status, _, body = fetch(
            connection, f"/v1/prefix/{prefix}?snapshot={entry.key}"
        )
        assert status == 200
        payload = json.loads(body)
        assert payload["snapshot"] == entry.key
        assert body == encode_body(
            server.service.prefix_query(str(prefix), snapshot=entry.key)
        )


class TestCachingHeaders:
    def test_etag_present_and_revalidates(self, server, connection):
        status, headers, body = fetch(connection, "/v1/stats")
        assert status == 200
        etag = headers["ETag"]
        assert etag == etag_for(server.service.version, body)
        status, headers, body = fetch(
            connection, "/v1/stats", headers={"If-None-Match": etag}
        )
        assert status == 304
        assert body == b""
        assert headers["ETag"] == etag
        assert "Content-Length" not in headers

    def test_wildcard_revalidates(self, server, connection):
        fetch(connection, "/v1/stats")
        status, _, body = fetch(
            connection, "/v1/stats", headers={"If-None-Match": "*"}
        )
        assert status == 304 and body == b""

    def test_stale_etag_gets_full_body(self, server, connection):
        status, _, body = fetch(
            connection, "/v1/stats", headers={"If-None-Match": '"stale"'}
        )
        assert status == 200 and body

    def test_store_version_header(self, server, connection):
        _, headers, _ = fetch(connection, "/v1/stats")
        assert headers["X-Store-Version"] == server.service.version

    def test_healthz_not_revalidatable(self, server, connection):
        """``/healthz`` embeds live cache stats, so it is never 304'd."""
        status, headers, _ = fetch(connection, "/healthz")
        assert status == 200
        assert "ETag" not in headers
        status, _, body = fetch(
            connection, "/healthz", headers={"If-None-Match": "*"}
        )
        assert status == 200 and body


class TestErrors:
    def test_unknown_endpoint_404(self, server, connection):
        status, _, body = fetch(connection, "/nope")
        assert status == 404
        assert "error" in json.loads(body)

    def test_invalid_prefix_400(self, server, connection):
        status, _, body = fetch(connection, "/v1/prefix/banana")
        assert status == 400
        assert "banana" in json.loads(body)["error"]

    def test_unknown_atom_404(self, server, connection):
        status, _, _ = fetch(connection, "/v1/atom/99999999")
        assert status == 404

    def test_non_numeric_atom_400(self, server, connection):
        status, _, _ = fetch(connection, "/v1/atom/zero")
        assert status == 400

    def test_unknown_snapshot_404(self, server, connection):
        status, _, _ = fetch(
            connection, "/v1/prefix/10.0.0.0/8?snapshot=nope"
        )
        assert status == 404

    def test_post_405(self, server, connection):
        status, _, body = fetch(connection, "/v1/stats", method="POST")
        assert status == 405
        assert "POST" in json.loads(body)["error"]


class TestConnections:
    def test_keep_alive_reuses_connection(self, server, connection):
        for _ in range(3):
            status, headers, _ = fetch(connection, "/v1/stats")
            assert status == 200
            assert headers["Connection"] == "keep-alive"

    def test_connection_close_honoured(self, server):
        conn = http.client.HTTPConnection(
            server.host, server.port, timeout=30
        )
        try:
            status, headers, _ = fetch(
                conn, "/v1/stats", headers={"Connection": "close"}
            )
            assert status == 200
            assert headers["Connection"] == "close"
        finally:
            conn.close()

    def test_garbage_request_closes_quietly(self, server):
        with socket.create_connection(
            (server.host, server.port), timeout=30
        ) as sock:
            sock.sendall(b"GARBAGE\r\n\r\n")
            assert sock.recv(1024) == b""


class TestLifecycle:
    def test_shutdown_refuses_new_connections(self, served_store_dir):
        with serve_in_thread(str(served_store_dir)) as handle:
            host, port = handle.host, handle.port
            conn = http.client.HTTPConnection(host, port, timeout=30)
            status, _, _ = fetch(conn, "/healthz")
            assert status == 200
            conn.close()
        with pytest.raises(OSError):
            socket.create_connection((host, port), timeout=2).close()

    def test_separate_servers_share_nothing(self, served_store_dir):
        with serve_in_thread(str(served_store_dir)) as first:
            with serve_in_thread(str(served_store_dir)) as second:
                assert first.port != second.port
                for handle in (first, second):
                    conn = http.client.HTTPConnection(
                        handle.host, handle.port, timeout=30
                    )
                    status, _, _ = fetch(conn, "/v1/stats")
                    conn.close()
                    assert status == 200
