"""Tests for general statistics helpers."""

import pytest

from repro.core.atoms import AtomSet, PolicyAtom
from repro.core.statistics import (
    atoms_per_as_distribution,
    cdf,
    general_stats,
    percentile,
    prefixes_per_as_distribution,
    prefixes_per_atom_distribution,
)
from repro.net.aspath import ASPath
from repro.net.prefix import Prefix

VP = [("rrc00", 1, "a")]


def atom(atom_id, prefixes, origin):
    return PolicyAtom(
        atom_id,
        frozenset(Prefix.parse(t) for t in prefixes),
        (ASPath.from_asns([1, 5, origin]),),
    )


def sample_set():
    return AtomSet(
        [
            atom(0, ["10.0.0.0/24", "10.0.1.0/24", "10.0.2.0/24"], 9),
            atom(1, ["10.0.3.0/24"], 9),
            atom(2, ["10.1.0.0/24"], 8),
        ],
        VP,
    )


class TestGeneralStats:
    def test_counts(self):
        stats = general_stats(sample_set())
        assert stats.n_prefixes == 5
        assert stats.n_ases == 2
        assert stats.n_atoms == 3
        assert stats.n_ases_one_atom == 1
        assert stats.n_single_prefix_atoms == 2
        assert stats.mean_atom_size == pytest.approx(5 / 3)
        assert stats.max_atom_size == 3

    def test_shares(self):
        stats = general_stats(sample_set())
        assert stats.ases_one_atom_share == pytest.approx(0.5)
        assert stats.single_prefix_atom_share == pytest.approx(2 / 3)

    def test_rows_render(self):
        rows = general_stats(sample_set()).rows()
        assert rows[0] == ("Number of prefixes", "5")
        assert any("%" in value for _, value in rows)

    def test_empty(self):
        stats = general_stats(AtomSet([], VP))
        assert stats.n_atoms == 0
        assert stats.mean_atom_size == 0.0
        assert stats.ases_one_atom_share == 0.0


class TestPercentile:
    def test_nearest_rank(self):
        values = list(range(1, 101))
        assert percentile(values, 0.99) == 100
        assert percentile(values, 0.5) == 51
        assert percentile(values, 0.0) == 1

    def test_empty(self):
        assert percentile([], 0.99) == 0

    def test_single(self):
        assert percentile([7], 0.99) == 7


class TestDistributions:
    def test_atoms_per_as(self):
        distribution = atoms_per_as_distribution(sample_set())
        assert distribution == {2: 1, 1: 1}

    def test_prefixes_per_atom(self):
        distribution = prefixes_per_atom_distribution(sample_set())
        assert distribution == {3: 1, 1: 2}

    def test_prefixes_per_as(self):
        distribution = prefixes_per_as_distribution(sample_set())
        assert distribution == {4: 1, 1: 1}

    def test_cdf(self):
        points = cdf(prefixes_per_atom_distribution(sample_set()))
        assert points == [(1, pytest.approx(2 / 3)), (3, pytest.approx(1.0))]

    def test_cdf_empty(self):
        assert cdf({}) == []
