"""Property-based tests for the Pr_full counting semantics."""

from hypothesis import given, settings, strategies as st

from repro.bgp.attributes import PathAttributes
from repro.bgp.messages import ElementType, RouteElement, RouteRecord
from repro.core.atoms import AtomSet, PolicyAtom
from repro.core.update_correlation import GROUP_ATOM, update_correlation
from repro.net.aspath import ASPath
from repro.net.prefix import Prefix

VP = [("rrc00", 1, "a")]
PREFIXES = [Prefix.parse(f"10.0.{i}.0/24") for i in range(6)]


def atoms_from_labels(labels):
    groups = {}
    for prefix, label in zip(PREFIXES, labels):
        groups.setdefault(label, []).append(prefix)
    atoms = [
        PolicyAtom(index, frozenset(members), (ASPath.from_asns([1, 9]),))
        for index, members in enumerate(groups.values())
    ]
    return AtomSet(atoms, VP)


def update(prefixes, timestamp=1):
    elements = [
        RouteElement(
            ElementType.ANNOUNCEMENT, prefix,
            PathAttributes(ASPath.from_asns([1, 9])),
        )
        for prefix in prefixes
    ]
    return RouteRecord("update", "ris", "rrc00", 1, "10.0.0.1", timestamp, elements)


labelings = st.lists(
    st.integers(min_value=0, max_value=3),
    min_size=len(PREFIXES), max_size=len(PREFIXES),
)
record_sets = st.lists(
    st.sets(st.sampled_from(PREFIXES), min_size=1), min_size=1, max_size=12
)


@given(labelings, record_sets)
@settings(max_examples=80, deadline=None)
def test_pr_full_bounded_and_counts_consistent(labels, prefix_sets):
    atom_set = atoms_from_labels(labels)
    records = [update(prefixes, timestamp=i) for i, prefixes in enumerate(prefix_sets)]
    result = update_correlation(atom_set, records)

    assert result.records_seen == len(records)
    for counts in result.groups.get(GROUP_ATOM, {}).values():
        assert counts.n_all >= 0 and counts.n_partial >= 0
        # A group can be touched at most once per record.
        assert counts.n_all + counts.n_partial <= len(records)
    for size in range(1, len(PREFIXES) + 1):
        value = result.pr_full(GROUP_ATOM, size)
        assert value is None or 0.0 <= value <= 1.0


@given(labelings)
@settings(max_examples=40, deadline=None)
def test_whole_atom_records_score_one(labels):
    atom_set = atoms_from_labels(labels)
    records = [update(set(atom.prefixes), timestamp=i)
               for i, atom in enumerate(atom_set)]
    result = update_correlation(atom_set, records)
    for atom in atom_set:
        value = result.pr_full(GROUP_ATOM, atom.size)
        assert value == 1.0


@given(labelings)
@settings(max_examples=40, deadline=None)
def test_single_prefix_records_never_full_for_multi(labels):
    atom_set = atoms_from_labels(labels)
    records = [update({prefix}, timestamp=i) for i, prefix in enumerate(PREFIXES)]
    result = update_correlation(atom_set, records)
    for size in range(2, len(PREFIXES) + 1):
        value = result.pr_full(GROUP_ATOM, size)
        assert value in (None, 0.0)
