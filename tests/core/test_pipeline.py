"""Tests for the records-in/atoms-out convenience pipeline."""


from repro.bgp.attributes import PathAttributes
from repro.bgp.messages import ElementType, RouteElement, RouteRecord
from repro.core.pipeline import compute_policy_atoms
from repro.core.sanitize import SanitizationConfig
from repro.net.aspath import ASPath
from repro.net.prefix import Prefix


def records_for(tables):
    """tables: {(collector, peer): {prefix: path_text}}"""
    records = []
    for (collector, peer), entries in tables.items():
        elements = [
            RouteElement(
                ElementType.RIB,
                Prefix.parse(prefix),
                PathAttributes(ASPath.parse(path)),
            )
            for prefix, path in entries.items()
        ]
        records.append(
            RouteRecord("rib", "ris", collector, peer, f"10.9.{peer}.1", 1, elements)
        )
    return records


def full_grid(paths_by_prefix, peers=(1, 2, 3, 4, 5)):
    """Every peer carries every prefix (keeps the visibility filter happy)."""
    tables = {}
    for index, peer in enumerate(peers):
        collector = f"rrc{index % 2:02d}"
        tables[(collector, peer)] = {
            prefix: f"{peer} {tail}" for prefix, tail in paths_by_prefix.items()
        }
    return records_for(tables)


class TestPipeline:
    def test_end_to_end(self):
        records = full_grid({"10.0.0.0/16": "7 9", "10.1.0.0/16": "7 9"})
        result = compute_policy_atoms(records)
        assert len(result.atoms) == 1
        assert result.atoms.prefix_count() == 2
        assert result.report.fullfeed_peers == 5
        assert result.timestamp == 1

    def test_custom_config_respected(self):
        records = full_grid({"10.0.0.0/28": "7 9"})
        strict = compute_policy_atoms(records)
        assert strict.atoms.prefix_count() == 0  # /28 filtered
        loose = compute_policy_atoms(
            records, config=SanitizationConfig(keep_all_lengths=True)
        )
        assert loose.atoms.prefix_count() == 1

    def test_strip_prepending_switch(self):
        records = full_grid({"10.0.0.0/16": "7 9", "10.1.0.0/16": "7 9 9"})
        raw = compute_policy_atoms(records)
        stripped = compute_policy_atoms(records, strip_prepending=True)
        assert len(raw.atoms) == 2
        assert len(stripped.atoms) == 1

    def test_atoms_only_use_fullfeed_vantage_points(self):
        records = full_grid({"10.0.0.0/16": "7 9", "10.1.0.0/16": "7 9"})
        # A partial peer whose view would split the atom: must be ignored.
        records += records_for(
            {("rrc00", 50): {"10.0.0.0/16": "50 8 9"}}
        )
        result = compute_policy_atoms(records)
        assert len(result.atoms) == 1
        vantage_asns = {asn for _, asn, _ in result.atoms.vantage_points}
        assert 50 not in vantage_asns

    def test_report_travels_with_atoms(self):
        records = full_grid({"10.0.0.0/16": "7 9"})
        result = compute_policy_atoms(records)
        assert result.report is result.dataset.report
        assert result.dataset.prefixes == result.atoms.prefixes()
