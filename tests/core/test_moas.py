"""Tests for MOAS detection."""

from repro.bgp.attributes import PathAttributes
from repro.bgp.messages import ElementType, RouteElement, RouteRecord
from repro.bgp.rib import RIBSnapshot
from repro.core.moas import moas_prefixes, moas_share
from repro.net.aspath import ASPath
from repro.net.prefix import Prefix


def build(tables):
    records = []
    for peer_asn, entries in tables.items():
        elements = [
            RouteElement(
                ElementType.RIB,
                Prefix.parse(prefix),
                PathAttributes(ASPath.parse(path)),
            )
            for prefix, path in entries.items()
        ]
        records.append(
            RouteRecord("rib", "ris", "rrc00", peer_asn, f"10.9.{peer_asn}.1",
                        100, elements)
        )
    return RIBSnapshot.from_records(records)


class TestMoas:
    def test_detects_conflicting_origins(self):
        snapshot = build(
            {
                1: {"10.0.0.0/16": "1 5 9"},
                2: {"10.0.0.0/16": "2 6 8"},
            }
        )
        conflicts = moas_prefixes(snapshot)
        assert conflicts == {Prefix.parse("10.0.0.0/16"): {8, 9}}

    def test_consistent_origin_not_moas(self):
        snapshot = build(
            {
                1: {"10.0.0.0/16": "1 5 9"},
                2: {"10.0.0.0/16": "2 6 9"},
            }
        )
        assert moas_prefixes(snapshot) == {}

    def test_share(self):
        snapshot = build(
            {
                1: {"10.0.0.0/16": "1 9", "10.1.0.0/16": "1 9"},
                2: {"10.0.0.0/16": "2 8", "10.1.0.0/16": "2 9"},
            }
        )
        assert moas_share(snapshot) == 0.5

    def test_prefix_restriction(self):
        snapshot = build(
            {
                1: {"10.0.0.0/16": "1 9", "10.1.0.0/16": "1 7"},
                2: {"10.0.0.0/16": "2 8", "10.1.0.0/16": "2 6"},
            }
        )
        only = moas_prefixes(snapshot, prefixes=[Prefix.parse("10.0.0.0/16")])
        assert set(only) == {Prefix.parse("10.0.0.0/16")}

    def test_world_moas_is_visible_and_bounded(self, internet_2024, atoms_2024):
        dataset = atoms_2024.dataset
        share = moas_share(
            dataset.snapshot, dataset.vantage_points, dataset.prefixes
        )
        # The paper verifies < 5 % throughout 2004-2024.
        assert 0.0 < share < 0.05
