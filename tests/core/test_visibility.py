"""Tests for the visibility report."""

import pytest

from repro.bgp.attributes import PathAttributes
from repro.bgp.messages import ElementType, RouteElement, RouteRecord
from repro.bgp.rib import RIBSnapshot
from repro.core.visibility import visibility_report
from repro.net.aspath import ASPath
from repro.net.prefix import Prefix


def build(tables):
    """tables: {(collector, peer): [prefix texts]}"""
    records = []
    for (collector, peer), prefixes in tables.items():
        elements = [
            RouteElement(
                ElementType.RIB,
                Prefix.parse(text),
                PathAttributes(ASPath.from_asns([peer, 9])),
            )
            for text in prefixes
        ]
        records.append(
            RouteRecord("rib", "ris", collector, peer, f"10.9.{peer}.1", 1, elements)
        )
    return RIBSnapshot.from_records(records)


@pytest.fixture
def report():
    snapshot = build(
        {
            ("rrc00", 1): ["10.0.0.0/8", "11.0.0.0/8", "12.0.0.0/8"],
            ("rrc00", 2): ["10.0.0.0/8", "11.0.0.0/8"],
            ("rrc01", 3): ["10.0.0.0/8"],
        }
    )
    return visibility_report(snapshot)


class TestReport:
    def test_distributions(self, report):
        assert report.by_peer_ases == {3: 1, 2: 1, 1: 1}
        assert report.by_collectors == {2: 1, 1: 2}
        assert report.total_prefixes == 3
        assert report.total_peers == 3
        assert report.total_collectors == 2

    def test_share_seen_by_at_most(self, report):
        assert report.share_seen_by_at_most(1) == pytest.approx(1 / 3)
        assert report.share_seen_by_at_most(2) == pytest.approx(2 / 3)
        assert report.share_seen_by_at_most(3) == pytest.approx(1.0)

    def test_share_globally_visible(self, report):
        # Threshold 0.8 of 3 peers = 2.4 -> only the 3-peer prefix counts.
        assert report.share_globally_visible(0.8) == pytest.approx(1 / 3)

    def test_cdf(self, report):
        points = report.peer_as_cdf()
        assert points[0] == (1, pytest.approx(1 / 3))
        assert points[-1] == (3, pytest.approx(1.0))

    def test_empty_snapshot(self):
        report = visibility_report(RIBSnapshot())
        assert report.total_prefixes == 0
        assert report.share_seen_by_at_most(5) == 0.0
        assert report.share_globally_visible() == 0.0


class TestOnSimulatedWorld:
    def test_paper_motivation_holds(self, records_2024):
        """§2.3: a significant share of prefixes has low visibility,
        while most prefixes are globally visible."""
        report = visibility_report(RIBSnapshot.from_records(records_2024))
        low = report.share_seen_by_at_most(3)
        high = report.share_globally_visible(0.5)
        assert 0.0 < low < 0.5
        assert high > 0.5
