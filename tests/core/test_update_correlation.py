"""Tests for the update-correlation analysis (Pr_full semantics)."""

import pytest

from repro.bgp.attributes import PathAttributes
from repro.bgp.messages import ElementType, RouteElement, RouteRecord
from repro.core.atoms import AtomSet, PolicyAtom
from repro.core.update_correlation import (
    GROUP_AS,
    GROUP_AS_MULTI_ATOM,
    GROUP_AS_SINGLE_ATOMS,
    GROUP_ATOM,
    update_correlation,
)
from repro.net.aspath import ASPath
from repro.net.prefix import Prefix

VP = [("rrc00", 1, "a")]
P = [f"10.0.{i}.0/24" for i in range(8)]


def make_atom(atom_id, prefixes, origin):
    path = ASPath.from_asns([1, 5, origin])
    return PolicyAtom(
        atom_id, frozenset(Prefix.parse(t) for t in prefixes), (path,)
    )


def update(prefix_texts, timestamp=1):
    elements = [
        RouteElement(
            ElementType.ANNOUNCEMENT,
            Prefix.parse(text),
            PathAttributes(ASPath.from_asns([1, 5, 9])),
        )
        for text in prefix_texts
    ]
    return RouteRecord("update", "ris", "rrc00", 1, "10.0.0.1", timestamp, elements)


class TestCounting:
    def test_full_appearance(self):
        atoms = AtomSet([make_atom(0, [P[0], P[1]], 9)], VP)
        result = update_correlation(atoms, [update([P[0], P[1]])])
        assert result.pr_full(GROUP_ATOM, 2) == 1.0

    def test_partial_appearance(self):
        atoms = AtomSet([make_atom(0, [P[0], P[1]], 9)], VP)
        result = update_correlation(atoms, [update([P[0]])])
        assert result.pr_full(GROUP_ATOM, 2) == 0.0

    def test_disjoint_record_ignored(self):
        atoms = AtomSet([make_atom(0, [P[0], P[1]], 9)], VP)
        result = update_correlation(atoms, [update([P[5]])])
        assert result.pr_full(GROUP_ATOM, 2) is None

    def test_formula_aggregation(self):
        # Paper §3.3: Pr_full(k) = sum N_all / sum (N_all + N_partial)
        # across groups of size k.
        atoms = AtomSet(
            [make_atom(0, [P[0], P[1]], 9), make_atom(1, [P[2], P[3]], 8)], VP
        )
        records = [
            update([P[0], P[1]]),   # atom 0 full
            update([P[0]]),         # atom 0 partial
            update([P[2], P[3]]),   # atom 1 full
            update([P[2], P[3]]),   # atom 1 full
        ]
        result = update_correlation(atoms, records)
        assert result.pr_full(GROUP_ATOM, 2) == pytest.approx(3 / 4)

    def test_superset_record_counts_full(self):
        atoms = AtomSet([make_atom(0, [P[0], P[1]], 9)], VP)
        result = update_correlation(atoms, [update([P[0], P[1], P[5]])])
        assert result.pr_full(GROUP_ATOM, 2) == 1.0

    def test_rib_records_ignored(self):
        atoms = AtomSet([make_atom(0, [P[0], P[1]], 9)], VP)
        rib = RouteRecord(
            "rib", "ris", "rrc00", 1, "10.0.0.1", 1,
            [
                RouteElement(
                    ElementType.RIB,
                    Prefix.parse(P[0]),
                    PathAttributes(ASPath.from_asns([1, 9])),
                )
            ],
        )
        result = update_correlation(atoms, [rib])
        assert result.records_seen == 0

    def test_max_size_cutoff(self):
        atoms = AtomSet([make_atom(0, P[:5], 9)], VP)
        result = update_correlation(atoms, [update(P[:5])], max_size=3)
        assert result.pr_full(GROUP_ATOM, 5) is None


class TestASGroups:
    def test_as_groups_union_atoms(self):
        # AS 9 has two atoms; the AS group holds all three prefixes.
        atoms = AtomSet(
            [make_atom(0, [P[0], P[1]], 9), make_atom(1, [P[2]], 9)], VP
        )
        result = update_correlation(atoms, [update([P[0], P[1]])])
        assert result.pr_full(GROUP_ATOM, 2) == 1.0
        assert result.pr_full(GROUP_AS, 3) == 0.0  # P[2] missing

    def test_as_categories(self):
        atoms = AtomSet(
            [
                make_atom(0, [P[0], P[1]], 9),   # AS 9: multi-prefix atom
                make_atom(1, [P[2]], 8),          # AS 8: all single-prefix
                make_atom(2, [P[3]], 8),
            ],
            VP,
        )
        result = update_correlation(
            atoms, [update([P[0], P[1]]), update([P[2]])]
        )
        assert result.pr_full(GROUP_AS_MULTI_ATOM, 2) == 1.0
        # AS 8 was touched but never fully (P[3] absent).
        assert result.pr_full(GROUP_AS_SINGLE_ATOMS, 2) == 0.0

    def test_curve_shape(self):
        atoms = AtomSet([make_atom(0, [P[0], P[1]], 9)], VP)
        result = update_correlation(atoms, [update([P[0], P[1]])])
        curve = result.curve(GROUP_ATOM, max_size=4)
        assert curve[0] == (2, 1.0)
        assert curve[1] == (3, None)


class TestIntegration:
    def test_atoms_beat_ases(self, internet_2024, atoms_2024):
        """The paper's headline: Pr_full(atoms) > Pr_full(ASes)."""
        records = internet_2024.update_records(
            internet_2024.current_time, hours=4.0
        )
        result = update_correlation(atoms_2024.atoms, records, max_size=7)
        atom_points = [v for _, v in result.curve(GROUP_ATOM) if v is not None]
        as_points = [v for _, v in result.curve(GROUP_AS) if v is not None]
        assert atom_points and as_points
        assert sum(atom_points) / len(atom_points) > sum(as_points) / len(as_points)
