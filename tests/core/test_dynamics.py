"""Tests for the BGP-dynamics classifier (paper §7.2)."""

import pytest

from repro.bgp.attributes import PathAttributes
from repro.bgp.messages import ElementType, RouteElement, RouteRecord
from repro.core.atoms import AtomSet, PolicyAtom
from repro.core.dynamics import (
    EVENT_ATOM,
    EVENT_NOISE,
    EVENT_PARTIAL,
    EVENT_SINGLETON,
    classify_updates,
    stable_atom_priority,
)
from repro.net.aspath import ASPath
from repro.net.prefix import Prefix

VP = [("rrc00", 1, "a")]
P = [f"10.0.{i}.0/24" for i in range(8)]


def make_atoms(partition):
    atoms = [
        PolicyAtom(
            index,
            frozenset(Prefix.parse(text) for text in group),
            (ASPath.from_asns([1, 5, 9]),),
        )
        for index, group in enumerate(partition)
    ]
    return AtomSet(atoms, VP)


def update(prefix_texts, timestamp=1):
    elements = [
        RouteElement(
            ElementType.ANNOUNCEMENT,
            Prefix.parse(text),
            PathAttributes(ASPath.from_asns([1, 5, 9])),
        )
        for text in prefix_texts
    ]
    return RouteRecord("update", "ris", "rrc00", 1, "10.0.0.1", timestamp, elements)


class TestClassification:
    def test_whole_atom_event(self):
        atoms = make_atoms([[P[0], P[1]], [P[2]]])
        summary = classify_updates(atoms, [update([P[0], P[1]])])
        assert summary.events[0].label == EVENT_ATOM

    def test_single_prefix_noise(self):
        atoms = make_atoms([[P[0], P[1]]])
        summary = classify_updates(atoms, [update([P[0]])])
        assert summary.events[0].label == EVENT_NOISE
        assert summary.events[0].is_noise

    def test_partial_event(self):
        atoms = make_atoms([[P[0], P[1], P[2]]])
        summary = classify_updates(atoms, [update([P[0], P[1]])])
        assert summary.events[0].label == EVENT_PARTIAL

    def test_singleton_event(self):
        atoms = make_atoms([[P[0]]])
        summary = classify_updates(atoms, [update([P[0]])])
        assert summary.events[0].label == EVENT_SINGLETON

    def test_unknown_prefixes_skipped(self):
        atoms = make_atoms([[P[0]]])
        summary = classify_updates(atoms, [update(["203.0.113.0/24"])])
        assert summary.events == []

    def test_rib_records_ignored(self):
        atoms = make_atoms([[P[0]]])
        rib = RouteRecord(
            "rib", "ris", "rrc00", 1, "10.0.0.1", 1,
            [
                RouteElement(
                    ElementType.RIB,
                    Prefix.parse(P[0]),
                    PathAttributes(ASPath.from_asns([1, 9])),
                )
            ],
        )
        assert classify_updates(atoms, [rib]).events == []


class TestSummary:
    def _summary(self):
        atoms = make_atoms([[P[0], P[1]], [P[2]], [P[3], P[4], P[5]]])
        records = [
            update([P[0], P[1]]),   # atom event
            update([P[0]]),         # noise
            update([P[3]]),         # noise
            update([P[2]]),         # singleton
            update([P[3], P[4]]),   # partial
        ]
        return classify_updates(atoms, records)

    def test_counts(self):
        counts = self._summary().counts()
        assert counts == {
            EVENT_ATOM: 1,
            EVENT_NOISE: 2,
            EVENT_SINGLETON: 1,
            EVENT_PARTIAL: 1,
        }

    def test_noise_share(self):
        assert self._summary().noise_share() == pytest.approx(2 / 5)

    def test_filter_drops_only_noise(self):
        filtered = self._summary().filtered()
        assert len(filtered) == 3
        assert all(not event.is_noise for event in filtered)

    def test_priority_prefers_stable_full_atoms(self):
        atoms = make_atoms([[P[0], P[1]], [P[2], P[3]]])
        summary = classify_updates(
            atoms,
            [update([P[2], P[3]]), update([P[0], P[1]])],
        )
        ranked = stable_atom_priority(atoms, summary, historically_stable={0})
        # The event touching the historically-stable atom 0 ranks first.
        assert 0 in ranked[0].atoms_touched

    def test_priority_defaults_to_size(self):
        atoms = make_atoms([[P[0], P[1]], [P[2], P[3], P[4]]])
        summary = classify_updates(
            atoms,
            [update([P[0], P[1]]), update([P[2], P[3], P[4]])],
        )
        ranked = stable_atom_priority(atoms, summary)
        assert 1 in ranked[0].atoms_touched  # bigger atom first


class TestIntegration:
    def test_noise_share_on_simulated_stream(self, internet_2024, atoms_2024):
        records = internet_2024.update_records(
            internet_2024.current_time, hours=2.0
        )
        summary = classify_updates(atoms_2024.atoms, records)
        assert summary.events
        counts = summary.counts()
        # All four classes appear in a realistic stream.
        assert counts.get(EVENT_ATOM, 0) > 0
        assert counts.get(EVENT_NOISE, 0) > 0
