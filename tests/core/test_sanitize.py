"""Tests for the sanitization pipeline on synthetic records."""

import pytest

from repro.bgp.attributes import PathAttributes
from repro.bgp.messages import ElementType, RouteElement, RouteRecord
from repro.core.sanitize import (
    SanitizationConfig,
    audit_peers,
    flag_abnormal_peers,
    sanitize,
)
from repro.net.aspath import ASPath
from repro.net.prefix import Prefix


def rib_elements(paths_by_prefix):
    return [
        RouteElement(
            ElementType.RIB,
            Prefix.parse(prefix),
            PathAttributes(ASPath.parse(path)),
        )
        for prefix, path in paths_by_prefix.items()
    ]


def record(collector, peer_asn, elements, warning=""):
    return RouteRecord(
        "rib", "ris", collector, peer_asn, f"10.0.{peer_asn % 250}.1", 100,
        elements, corrupt_warning=warning,
    )


def healthy_base(n_peers=5, n_collectors=2, n_prefixes=6):
    """Records from healthy full-feed peers across collectors."""
    records = []
    prefixes = {f"10.{i}.0.0/16": None for i in range(n_prefixes)}
    for peer in range(1, n_peers + 1):
        collector = f"rrc{peer % n_collectors:02d}"
        entries = {p: f"{peer} 77 99" for p in prefixes}
        records.append(record(collector, peer, rib_elements(entries)))
    return records


class TestPeerAudit:
    def test_counts_duplicates(self):
        elements = rib_elements({"10.0.0.0/16": "1 9"}) * 3
        audits, _ = audit_peers([record("rrc00", 1, elements)])
        assert audits[1].duplicate_elements == 2
        assert audits[1].unique_prefixes == 1

    def test_counts_corrupt_records(self):
        audits, _ = audit_peers(
            [record("rrc00", 1, [], warning="Invalid MP(UN)REACH NLRI")]
        )
        assert audits[1].corrupt_records == 1

    def test_counts_private_asn_paths(self):
        audits, _ = audit_peers(
            [record("rrc00", 1, rib_elements({"10.0.0.0/16": "1 65000 9"}))]
        )
        assert audits[1].private_asn_paths == 1

    def test_private_peer_asn_itself_not_counted(self):
        # A private *peer* ASN is odd but not the misconfiguration the
        # paper targets; only private ASNs inside the path count.
        audits, _ = audit_peers(
            [record("rrc00", 65001, rib_elements({"10.0.0.0/16": "65001 7 9"}))]
        )
        assert audits[65001].private_asn_paths == 0


class TestFlagging:
    def test_addpath_peer_removed(self):
        records = healthy_base()
        bad = [
            record("rrc00", 99, rib_elements({"10.0.0.0/16": "99 77 99"}),
                   warning="unknown BGP4MP record subtype 9")
        ]
        dataset = sanitize(records + bad)
        assert dataset.report.removed_peers.get(99) == "addpath"

    def test_private_asn_peer_removed(self):
        records = healthy_base()
        entries = {f"10.{i}.0.0/16": "99 65000 77 9" for i in range(6)}
        dataset = sanitize(records + [record("rrc00", 99, rib_elements(entries))])
        assert dataset.report.removed_peers.get(99) == "private_asn"

    def test_duplicate_peer_removed(self):
        records = healthy_base()
        elements = rib_elements({f"10.{i}.0.0/16": "99 7 9" for i in range(6)})
        dataset = sanitize(records + [record("rrc00", 99, elements + elements)])
        assert dataset.report.removed_peers.get(99) == "duplicates"

    def test_healthy_peers_kept(self):
        dataset = sanitize(healthy_base())
        assert not dataset.report.removed_peers
        assert dataset.report.fullfeed_peers == 5

    def test_occasional_private_asn_tolerated(self):
        audits, _ = audit_peers(
            [
                record(
                    "rrc00", 1,
                    rib_elements(
                        {
                            "10.0.0.0/16": "1 65000 9",
                            "10.1.0.0/16": "1 7 9",
                            "10.2.0.0/16": "1 7 9",
                            "10.3.0.0/16": "1 7 9",
                        }
                    ),
                )
            ]
        )
        removed = flag_abnormal_peers(audits, SanitizationConfig())
        assert 1 not in removed


class TestFullFeed:
    def test_partial_peer_not_a_vantage_point(self):
        records = healthy_base(n_prefixes=10)
        partial = record("rrc00", 50, rib_elements({"10.0.0.0/16": "50 77 99"}))
        dataset = sanitize(records + [partial])
        vantage_asns = {asn for _, asn, _ in dataset.vantage_points}
        assert 50 not in vantage_asns
        assert dataset.report.partial_peers == 1


class TestPrefixFilter:
    def test_visibility_thresholds(self):
        records = healthy_base(n_peers=5, n_collectors=2)
        # A prefix seen by a single peer at a single collector.
        lonely = record("rrc00", 1, rib_elements({"192.0.2.0/24": "1 9"}))
        dataset = sanitize(records + [lonely])
        assert Prefix.parse("192.0.2.0/24") not in dataset.prefixes
        assert dataset.report.prefixes_dropped_visibility >= 1

    def test_single_collector_prefix_dropped(self):
        records = healthy_base(n_peers=6, n_collectors=3)
        # Seen by four peers but only at one collector: the paper's
        # "stuck route / misconfigured collector" case.
        extra = [
            record("rrc00", 70 + i, rib_elements({"192.0.2.0/24": f"{70+i} 9"}))
            for i in range(4)
        ]
        dataset = sanitize(records + extra)
        assert Prefix.parse("192.0.2.0/24") not in dataset.prefixes

    def test_length_filter(self):
        records = healthy_base()
        for peer in range(1, 6):
            collector = f"rrc{peer % 2:02d}"
            records.append(
                record(collector, peer, rib_elements({"10.99.0.0/28": f"{peer} 9"}))
            )
        dataset = sanitize(records)
        assert Prefix.parse("10.99.0.0/28") not in dataset.prefixes
        assert dataset.report.prefixes_dropped_length >= 1

    def test_v6_length_filter_is_48(self):
        records = healthy_base()
        for peer in range(1, 6):
            collector = f"rrc{peer % 2:02d}"
            records.append(
                record(
                    collector, peer,
                    rib_elements(
                        {"2001:db8::/48": f"{peer} 9", "2001:db9::/56": f"{peer} 9"}
                    ),
                )
            )
        dataset = sanitize(records)
        assert Prefix.parse("2001:db8::/48") in dataset.prefixes
        assert Prefix.parse("2001:db9::/56") not in dataset.prefixes

    def test_keep_all_lengths_mode(self):
        # The 2002 replication (§3.1.3) keeps every prefix length.
        records = healthy_base()
        for peer in range(1, 6):
            collector = f"rrc{peer % 2:02d}"
            records.append(
                record(collector, peer, rib_elements({"10.99.0.0/28": f"{peer} 9"}))
            )
        config = SanitizationConfig(keep_all_lengths=True)
        dataset = sanitize(records, config)
        assert Prefix.parse("10.99.0.0/28") in dataset.prefixes

    def test_report_accounting(self):
        dataset = sanitize(healthy_base())
        report = dataset.report
        assert report.prefixes_kept == len(dataset.prefixes)
        assert (
            report.prefixes_total
            == report.prefixes_kept
            + report.prefixes_dropped_visibility
            + report.prefixes_dropped_length
        )


class TestEndToEnd:
    def test_sanitize_simulated_2021(self):
        """Artifact peers injected by the simulator must be caught."""
        from repro.simulation.scenario import SimulatedInternet
        from tests.conftest import TEST_WORLD

        sim = SimulatedInternet(TEST_WORLD, start="2021-01-15 08:00")
        active = {
            p.asn: p.artifact
            for p in sim.world.layout.peers
            if p.artifact_active(sim.current_time)
        }
        if not active:
            pytest.skip("no artifacts active at this instant")
        dataset = sanitize(sim.rib_records("2021-01-15 08:00"))
        for asn, artifact in active.items():
            if artifact in ("addpath", "private_asn", "duplicates"):
                assert asn in dataset.report.removed_peers, (
                    f"expected AS{asn} ({artifact}) to be removed"
                )
