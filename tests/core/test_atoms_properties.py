"""Property-based tests for atom computation invariants.

Random cross-peer snapshots are generated and the definitional
invariants checked: atoms partition the prefix universe, membership is
exactly path-vector equality, and the computation is insensitive to
record order.
"""

from hypothesis import given, settings, strategies as st

from repro.bgp.attributes import PathAttributes
from repro.bgp.messages import ElementType, RouteElement, RouteRecord
from repro.bgp.rib import RIBSnapshot
from repro.core.atoms import compute_atoms
from repro.net.aspath import ASPath
from repro.net.prefix import Prefix

PREFIXES = [Prefix.parse(f"10.0.{i}.0/24") for i in range(6)]
PEERS = [("rrc00", 1, "a"), ("rrc00", 2, "b"), ("rrc01", 3, "c")]
PATH_POOL = [
    None,
    (5, 9),
    (6, 9),
    (5, 5, 9),
    (7, 8),
]


@st.composite
def snapshots(draw):
    """A random snapshot: per (peer, prefix), a path from the pool."""
    records = []
    for collector, peer_asn, address in PEERS:
        elements = []
        for prefix in PREFIXES:
            choice = draw(st.sampled_from(range(len(PATH_POOL))))
            tail = PATH_POOL[choice]
            if tail is None:
                continue
            path = ASPath.from_asns([peer_asn, *tail])
            elements.append(
                RouteElement(ElementType.RIB, prefix, PathAttributes(path))
            )
        records.append(
            RouteRecord("rib", "ris", collector, peer_asn, address, 100, elements)
        )
    return records


@given(snapshots())
@settings(max_examples=60, deadline=None)
def test_atoms_partition_prefixes(records):
    snapshot = RIBSnapshot.from_records(records)
    atoms = compute_atoms(snapshot)
    seen = set()
    for atom in atoms:
        assert atom.prefixes, "no empty atoms"
        assert not (atom.prefixes & seen), "atoms must be disjoint"
        seen |= atom.prefixes
    assert seen == snapshot.all_prefixes()


@given(snapshots())
@settings(max_examples=60, deadline=None)
def test_membership_is_path_vector_equality(records):
    snapshot = RIBSnapshot.from_records(records)
    atoms = compute_atoms(snapshot)
    peers = atoms.vantage_points

    def vector(prefix):
        return tuple(snapshot.path(peer, prefix) for peer in peers)

    for atom in atoms:
        members = sorted(atom.prefixes, key=Prefix.key)
        reference = vector(members[0])
        for member in members[1:]:
            assert vector(member) == reference
    # Across atoms, vectors differ.
    representatives = [sorted(a.prefixes, key=Prefix.key)[0] for a in atoms]
    vectors = [vector(p) for p in representatives]
    assert len(set(vectors)) == len(vectors)


@given(snapshots(), st.randoms(use_true_random=False))
@settings(max_examples=30, deadline=None)
def test_record_order_does_not_matter(records, rng):
    baseline = compute_atoms(RIBSnapshot.from_records(records))
    shuffled = list(records)
    rng.shuffle(shuffled)
    again = compute_atoms(RIBSnapshot.from_records(shuffled))
    assert baseline.prefix_sets() == again.prefix_sets()


@given(snapshots())
@settings(max_examples=30, deadline=None)
def test_strip_prepending_never_increases_atoms(records):
    snapshot = RIBSnapshot.from_records(records)
    raw = compute_atoms(snapshot)
    stripped = compute_atoms(snapshot, strip_prepending=True)
    assert len(stripped) <= len(raw)
