"""Tests for formation-distance computation."""

import pytest

from repro.core.atoms import AtomSet, PolicyAtom
from repro.core.formation import (
    FORMATION_METHOD_II,
    NO_SPLIT,
    REASON_PREPEND,
    REASON_SINGLE,
    REASON_UNIQUE_PEERS,
    atom_pair_split,
    formation_distances,
    split_point,
)
from repro.net.aspath import ASPath
from repro.net.prefix import Prefix

VP = [("rrc00", 1, "a"), ("rrc00", 2, "b")]


def atom(atom_id, prefixes, paths):
    """paths: list of path texts (None for missing), peer-first order."""
    parsed = tuple(None if p is None else ASPath.parse(p) for p in paths)
    return PolicyAtom(
        atom_id, frozenset(Prefix.parse(t) for t in prefixes), parsed
    )


def atom_set(*atoms):
    vps = VP[: len(atoms[0].paths)]
    return AtomSet(list(atoms), vps)


class TestSplitPoint:
    def test_missing_path_gives_one(self):
        assert split_point(None, (9, 5), raw_equal=False) == 1
        assert split_point((9, 5), None, raw_equal=False) == 1

    def test_both_missing_no_split(self):
        assert split_point(None, None, raw_equal=True) == NO_SPLIT

    def test_identical_no_split(self):
        assert split_point((9, 5, 1), (9, 5, 1), raw_equal=True) == NO_SPLIT

    def test_prepend_only_difference_method_iii(self):
        # Stripped equal, raw different -> origin-imposed: distance 1.
        assert split_point((9, 5), (9, 5), raw_equal=False) == 1

    def test_prepend_only_difference_method_ii(self):
        assert (
            split_point((9, 5), (9, 5), raw_equal=False, method=FORMATION_METHOD_II)
            == NO_SPLIT
        )

    def test_divergence_position(self):
        # Origin-first sequences; position 1 = origin.
        assert split_point((9, 5, 1), (9, 6, 1), raw_equal=False) == 2
        assert split_point((9, 5, 1), (9, 5, 2), raw_equal=False) == 3

    def test_proper_prefix_diverges_after_shorter(self):
        assert split_point((9, 5), (9, 5, 1), raw_equal=False) == 3


class TestPairSplit:
    def test_min_over_vantage_points(self):
        a = atom(0, ["10.0.1.0/24"], ["1 5 9", "2 6 9"])
        b = atom(1, ["10.0.2.0/24"], ["1 5 9", "2 7 9"])
        from repro.core.formation import _atom_profiles

        split = atom_pair_split(_atom_profiles(a), _atom_profiles(b))
        assert split == 2  # diverges at the 2nd AS from origin at VP 2

    def test_earliest_vp_wins(self):
        a = atom(0, ["10.0.1.0/24"], ["1 5 9", "2 6 9"])
        b = atom(1, ["10.0.2.0/24"], ["1 5 8", None])  # origin differs + missing
        from repro.core.formation import _atom_profiles

        assert atom_pair_split(_atom_profiles(a), _atom_profiles(b)) == 1


class TestFormationDistances:
    def test_single_atom_origin_distance_one(self):
        result = formation_distances(
            atom_set(atom(0, ["10.0.1.0/24"], ["1 5 9", "2 6 9"]))
        )
        assert result.distances[0] == 1
        assert result.reasons[0] == REASON_SINGLE
        assert result.single_atom_origins == 1

    def test_two_atoms_distance_is_max_split(self):
        a = atom(0, ["10.0.1.0/24"], ["1 5 9", "2 6 9"])
        b = atom(1, ["10.0.2.0/24"], ["1 5 9", "2 7 9"])
        result = formation_distances(atom_set(a, b))
        assert result.distances[0] == 2
        assert result.distances[1] == 2
        assert result.dmin_per_origin[9] == 2
        assert result.dmax_per_origin[9] == 2

    def test_three_atoms_mixed_distances(self):
        # c diverges from a at 3 and from b at 2 -> d(c) = max = 3.
        a = atom(0, ["10.0.1.0/24"], ["1 5 4 9"])
        b = atom(1, ["10.0.2.0/24"], ["1 6 4 9"])
        c = atom(2, ["10.0.3.0/24"], ["1 7 4 9"])
        result = formation_distances(AtomSet([a, b, c], VP[:1]))
        # All pairwise splits are at position 3 (the AS above 4 differs).
        assert result.distances == {0: 3, 1: 3, 2: 3}

    def test_unique_peer_set_reason(self):
        a = atom(0, ["10.0.1.0/24"], ["1 5 9", "2 6 9"])
        b = atom(1, ["10.0.2.0/24"], ["1 5 9", None])
        result = formation_distances(atom_set(a, b))
        assert result.distances[1] == 1
        assert result.reasons[1] == REASON_UNIQUE_PEERS

    def test_prepend_reason(self):
        a = atom(0, ["10.0.1.0/24"], ["1 5 9"])
        b = atom(1, ["10.0.2.0/24"], ["1 5 9 9"])
        result = formation_distances(AtomSet([a, b], VP[:1]))
        assert result.distances[0] == 1
        assert result.reasons[0] == REASON_PREPEND

    def test_method_ii_excludes_indistinguishable(self):
        a = atom(0, ["10.0.1.0/24"], ["1 5 9"])
        b = atom(1, ["10.0.2.0/24"], ["1 5 9 9"])
        result = formation_distances(
            AtomSet([a, b], VP[:1]), method=FORMATION_METHOD_II
        )
        assert 0 not in result.distances
        assert set(result.excluded) == {0, 1}

    def test_moas_atoms_excluded_by_default(self):
        moas = atom(0, ["10.0.1.0/24"], ["1 5 9", "2 6 8"])  # two origins
        sibling = atom(1, ["10.0.2.0/24"], ["1 5 9", "2 6 9"])
        result = formation_distances(atom_set(moas, sibling))
        assert 0 not in result.distances
        assert result.distances[1] == 1  # sibling is now alone under AS 9

    def test_moas_atoms_included_on_request(self):
        moas = atom(0, ["10.0.1.0/24"], ["1 5 9", "2 6 8"])
        sibling = atom(1, ["10.0.2.0/24"], ["1 5 9", "2 6 9"])
        result = formation_distances(atom_set(moas, sibling), include_moas=True)
        assert 0 in result.distances

    def test_unknown_method_rejected(self):
        with pytest.raises(ValueError):
            formation_distances(
                atom_set(atom(0, ["10.0.1.0/24"], ["1 9", "2 9"])), method="nope"
            )


class TestResultViews:
    def _result(self):
        a = atom(0, ["10.0.1.0/24"], ["1 5 9"])
        b = atom(1, ["10.0.2.0/24"], ["1 6 9"])
        c = atom(2, ["10.0.3.0/24"], ["1 7 8"])  # lone atom of AS 8
        return formation_distances(AtomSet([a, b, c], VP[:1])), 3

    def test_distribution_and_shares(self):
        result, total = self._result()
        shares = result.distance_shares(max_distance=5)
        assert shares[1] == pytest.approx(1 / 3)
        assert shares[2] == pytest.approx(2 / 3)
        assert sum(shares.values()) == pytest.approx(1.0)

    def test_cumulative(self):
        result, _ = self._result()
        cumulative = dict(result.cumulative_shares(max_distance=3))
        assert cumulative[3] == pytest.approx(1.0)

    def test_excluding_single_origins(self):
        result, _ = self._result()
        a = atom(0, ["10.0.1.0/24"], ["1 5 9"])
        b = atom(1, ["10.0.2.0/24"], ["1 6 9"])
        c = atom(2, ["10.0.3.0/24"], ["1 7 8"])
        shares = result.shares_excluding_single_origins(AtomSet([a, b, c], VP[:1]))
        assert shares[2] == pytest.approx(1.0)
        assert shares[1] == pytest.approx(0.0)

    def test_tail_bucket_absorbs(self):
        a = atom(0, ["10.0.1.0/24"], ["1 6 5 4 3 2 9"])
        b = atom(1, ["10.0.2.0/24"], ["1 6 5 4 3 7 9"])  # diverge at pos 2? no:
        # origin-first: (9,2,3,4,5,6) vs (9,7,3,4,5,6) -> position 2.
        result = formation_distances(AtomSet([a, b], VP[:1]))
        shares = result.distance_shares(max_distance=2)
        assert shares[2] == pytest.approx(1.0)
