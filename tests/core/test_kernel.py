"""Kernel-vs-reference property tests.

The columnar kernel must reproduce :func:`compute_atoms_reference`
exactly — atom ids, atom ordering, member sets and path vectors — over
simulated worlds exercising every normalisation branch: MOAS prefixes,
singleton and multi-element AS_SETs, prepending, and partial
visibility (prefixes unseen at some vantage points).
"""

from hypothesis import given, settings, strategies as st

from repro.bgp.attributes import PathAttributes
from repro.bgp.messages import ElementType, RouteElement, RouteRecord
from repro.bgp.rib import RIBSnapshot
from repro.core.atoms import compute_atoms
from repro.core.intern import PathInternPool
from repro.core.kernel import columnar_atoms, compute_atoms_reference
from repro.net.aspath import ASPath, PathSegment, SegmentType
from repro.net.prefix import Prefix

import pytest

PREFIXES = [Prefix.parse(f"10.1.{i}.0/24") for i in range(8)]
PEERS = [
    ("rrc00", 11, "a"),
    ("rrc00", 12, "b"),
    ("rrc01", 13, "c"),
    ("rrc01", 14, "d"),
]

# Path tails appended after the peer ASN.  Tuples are AS_SEQUENCEs;
# a trailing frozenset becomes an AS_SET segment (singleton sets are
# expanded by normalisation, larger ones drop the route, §2.4.4).
# Distinct origins across peers (9 vs 77) give MOAS prefixes.
TAILS = [
    None,                           # prefix invisible at this peer
    (5, 9),
    (6, 9),
    (5, 5, 9),                      # prepending
    (7, 77),                        # MOAS origin
    (5, frozenset({9})),            # singleton AS_SET: expanded
    (6, frozenset({8, 9})),         # multi AS_SET: route removed
]


def _build_path(peer_asn, tail):
    segments = []
    run = [peer_asn]
    for part in tail:
        if isinstance(part, frozenset):
            segments.append(PathSegment(SegmentType.AS_SEQUENCE, run))
            segments.append(PathSegment(SegmentType.AS_SET, sorted(part)))
            run = []
        else:
            run.append(part)
    if run:
        segments.append(PathSegment(SegmentType.AS_SEQUENCE, run))
    return ASPath(segments)


@st.composite
def snapshots(draw):
    """A random snapshot drawing per-(peer, prefix) tails from TAILS."""
    records = []
    for collector, peer_asn, address in PEERS:
        elements = []
        for prefix in PREFIXES:
            tail = TAILS[draw(st.sampled_from(range(len(TAILS))))]
            if tail is None:
                continue
            path = _build_path(peer_asn, tail)
            elements.append(
                RouteElement(ElementType.RIB, prefix, PathAttributes(path))
            )
        records.append(
            RouteRecord("rib", "ris", collector, peer_asn, address, 100, elements)
        )
    return records


def assert_identical(left, right):
    """Atom-for-atom equality: ids, ordering, members and paths."""
    assert len(left) == len(right)
    assert left.vantage_points == right.vantage_points
    for ours, theirs in zip(left, right):
        assert ours.atom_id == theirs.atom_id
        assert ours.prefixes == theirs.prefixes
        assert ours.paths == theirs.paths


@given(snapshots())
@settings(max_examples=60, deadline=None)
def test_kernel_matches_reference(records):
    snapshot = RIBSnapshot.from_records(records)
    assert_identical(
        columnar_atoms(snapshot), compute_atoms_reference(snapshot)
    )


@given(snapshots())
@settings(max_examples=40, deadline=None)
def test_kernel_matches_reference_stripped(records):
    snapshot = RIBSnapshot.from_records(records)
    assert_identical(
        columnar_atoms(snapshot, strip_prepending=True),
        compute_atoms_reference(snapshot, strip_prepending=True),
    )


@given(snapshots())
@settings(max_examples=40, deadline=None)
def test_kernel_matches_reference_no_expansion(records):
    snapshot = RIBSnapshot.from_records(records)
    assert_identical(
        columnar_atoms(snapshot, expand_singleton_sets=False),
        compute_atoms_reference(snapshot, expand_singleton_sets=False),
    )


@given(snapshots(), snapshots())
@settings(max_examples=30, deadline=None)
def test_shared_pool_does_not_change_results(records_a, records_b):
    """One pool across successive snapshots is result-invariant."""
    pool = PathInternPool()
    for records in (records_a, records_b):
        snapshot = RIBSnapshot.from_records(records)
        assert_identical(
            columnar_atoms(snapshot, pool=pool),
            compute_atoms_reference(snapshot),
        )


@given(snapshots())
@settings(max_examples=30, deadline=None)
def test_compute_atoms_delegates_to_kernel(records):
    snapshot = RIBSnapshot.from_records(records)
    assert_identical(compute_atoms(snapshot), compute_atoms_reference(snapshot))


def test_pool_option_mismatch_rejected():
    snapshot = RIBSnapshot.from_records([])
    pool = PathInternPool(strip_prepending=True)
    with pytest.raises(ValueError):
        columnar_atoms(snapshot, pool=pool)
