"""Intern-pool invariants: dense ids, the absent sentinel, packed keys.

The columnar kernel's correctness rests on three properties of
:class:`PathInternPool`: ids are stable for the pool's lifetime (so
packed keys compare across snapshots), id 0 means exactly "no route"
(unseen or removed by normalisation), and packed-key equality holds iff
the underlying path vectors are equal.
"""

from hypothesis import given, settings, strategies as st

from repro.bgp.attributes import PathAttributes
from repro.bgp.messages import ElementType, RouteElement, RouteRecord
from repro.bgp.rib import RIBSnapshot
from repro.core.atoms import compute_atoms
from repro.core.incremental import AtomIndex
from repro.core.intern import (
    ABSENT_ID,
    KEY_WIDTH,
    PathInternPool,
    pack_key,
    unpack_key,
)
from repro.net.aspath import ASPath, PathSegment, SegmentType


def seq(*asns):
    return ASPath.from_asns(list(asns))


class TestDenseIds:
    def test_ids_start_after_absent_sentinel(self):
        pool = PathInternPool()
        assert pool.path_id(seq(1, 2, 3)) == 1
        assert pool.path_id(seq(4, 5)) == 2
        assert pool.id_count == 3  # two paths + the sentinel slot

    def test_ids_stable_across_repeated_and_equal_lookups(self):
        pool = PathInternPool()
        first = pool.path_id(seq(1, 2, 3))
        # A value-equal but distinct object maps to the same id.
        assert pool.path_id(seq(1, 2, 3)) == first
        assert pool.path_for_id(first) == seq(1, 2, 3)

    def test_ids_stable_across_snapshots(self):
        """Feeding successive snapshots never renumbers seen paths."""
        pool = PathInternPool()
        ids_before = {
            path: pool.path_id(path) for path in (seq(1, 9), seq(2, 9))
        }
        pool.path_id(seq(3, 9))  # a later snapshot introduces a new path
        for path, pid in ids_before.items():
            assert pool.path_id(path) == pid

    def test_none_is_absent(self):
        pool = PathInternPool()
        assert pool.path_id(None) == ABSENT_ID
        assert pool.path_for_id(ABSENT_ID) is None

    def test_dropped_multi_as_set_path_is_absent(self):
        """§2.4.4: multi-element AS_SETs remove the route entirely."""
        pool = PathInternPool()
        dropped = ASPath([
            PathSegment(SegmentType.AS_SEQUENCE, [1, 2]),
            PathSegment(SegmentType.AS_SET, [8, 9]),
        ])
        assert pool.path_id(dropped) == ABSENT_ID
        assert pool.path(dropped) is None

    def test_singleton_sets_share_the_expanded_path_id(self):
        """A singleton AS_SET expands to the plain sequence's path."""
        pool = PathInternPool()
        plain = pool.path_id(seq(1, 2, 9))
        with_set = ASPath([
            PathSegment(SegmentType.AS_SEQUENCE, [1, 2]),
            PathSegment(SegmentType.AS_SET, [9]),
        ])
        assert pool.path_id(with_set) == plain

    def test_canonical_instances_are_shared(self):
        pool = PathInternPool()
        a = pool.path(seq(1, 2, 3))
        b = pool.path(seq(1, 2, 3))
        assert a is b  # identity stands in for equality afterwards


class TestPoolReuse:
    def _records(self, tails):
        elements = [
            RouteElement(
                ElementType.RIB,
                prefix,
                PathAttributes(seq(11, *tail)),
            )
            for prefix, tail in tails
        ]
        return [RouteRecord("rib", "ris", "rrc00", 11, "a", 100, elements)]

    def test_compute_atoms_and_atom_index_share_a_pool(self):
        from repro.net.prefix import Prefix

        p1, p2 = Prefix.parse("10.0.1.0/24"), Prefix.parse("10.0.2.0/24")
        records = self._records([(p1, (5, 9)), (p2, (6, 9))])
        snapshot = RIBSnapshot.from_records(records)

        pool = PathInternPool()
        atoms = compute_atoms(snapshot, pool=pool)
        interned = pool.id_count
        assert interned == 3  # two paths + sentinel

        index = AtomIndex(snapshot, pool=pool)
        # The index's keys reuse the already-interned paths: nothing new.
        assert index.pool is pool
        assert pool.id_count == interned
        assert index.atoms().prefix_sets() == atoms.prefix_sets()


PATHS = st.lists(
    st.integers(min_value=1, max_value=9), min_size=1, max_size=4
).map(lambda asns: ASPath.from_asns(asns))
VECTORS = st.lists(st.one_of(st.none(), PATHS), min_size=1, max_size=6)


class TestPackedKeys:
    def test_roundtrip(self):
        ids = (0, 1, 7, 0, 2)
        key = pack_key(ids)
        assert len(key) == KEY_WIDTH * len(ids)
        assert unpack_key(key) == ids

    @given(VECTORS, VECTORS)
    @settings(max_examples=200, deadline=None)
    def test_key_equality_iff_vector_equality(self, left, right):
        """pack_key(ids(v1)) == pack_key(ids(v2))  ⟺  v1 == v2.

        Both vectors run through one pool, as the kernel uses it: equal
        paths — including equal-but-distinct objects — share an id, and
        distinct normalised paths never collide.
        """
        pool = PathInternPool()
        key_left = pack_key([pool.path_id(p) for p in left])
        key_right = pack_key([pool.path_id(p) for p in right])
        normalised_left = [pool.path(p) for p in left]
        normalised_right = [pool.path(p) for p in right]
        assert (key_left == key_right) == (
            normalised_left == normalised_right
        )
