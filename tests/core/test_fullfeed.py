"""Tests for full-feed inference."""

from repro.bgp.attributes import PathAttributes
from repro.bgp.messages import ElementType, RouteElement, RouteRecord
from repro.bgp.rib import RIBSnapshot
from repro.core.fullfeed import feed_summary, full_feed_peers, full_feed_threshold
from repro.net.aspath import ASPath
from repro.net.prefix import Prefix


def snapshot_with_counts(counts):
    """counts: {peer_asn: number of prefixes}."""
    records = []
    for peer_asn, count in counts.items():
        elements = [
            RouteElement(
                ElementType.RIB,
                Prefix.parse(f"10.{i // 256}.{i % 256}.0/24"),
                PathAttributes(ASPath.from_asns([peer_asn, 9])),
            )
            for i in range(count)
        ]
        records.append(
            RouteRecord("rib", "ris", "rrc00", peer_asn, f"10.9.{peer_asn}.1",
                        100, elements)
        )
    return RIBSnapshot.from_records(records)


class TestInference:
    def test_threshold_is_ratio_of_max(self):
        snapshot = snapshot_with_counts({1: 1000, 2: 500})
        assert full_feed_threshold(snapshot) == 900

    def test_ninety_percent_rule(self):
        snapshot = snapshot_with_counts({1: 1000, 2: 950, 3: 899, 4: 10})
        peers = full_feed_peers(snapshot)
        asns = {asn for _, asn, _ in peers}
        assert asns == {1, 2}

    def test_strictly_greater_than_threshold(self):
        snapshot = snapshot_with_counts({1: 1000, 2: 900})
        asns = {asn for _, asn, _ in full_feed_peers(snapshot)}
        assert asns == {1}  # exactly 90 % does not qualify

    def test_custom_ratio(self):
        snapshot = snapshot_with_counts({1: 1000, 2: 800})
        asns = {asn for _, asn, _ in full_feed_peers(snapshot, ratio=0.75)}
        assert asns == {1, 2}

    def test_empty_snapshot(self):
        assert full_feed_peers(RIBSnapshot()) == []
        assert full_feed_threshold(RIBSnapshot()) == 0

    def test_feed_summary(self):
        snapshot = snapshot_with_counts({1: 1000, 2: 950, 3: 100})
        summary = feed_summary(snapshot)
        assert summary["max_prefixes"] == 1000
        assert summary["full_feed"] == 2
        assert summary["partial"] == 1
