"""Tests for atom-split detection and observer counting."""


from repro.core.atoms import AtomSet, PolicyAtom
from repro.core.splits import (
    detect_splits,
    observer_count_distribution,
    top_observer_breakdown,
)
from repro.net.aspath import ASPath
from repro.net.prefix import Prefix

VP = [("rrc00", 1, "a"), ("rrc00", 2, "b"), ("rrc01", 3, "c")]
P = [f"10.0.{i}.0/24" for i in range(6)]


def atom(atom_id, prefixes, path_texts):
    paths = tuple(
        None if text is None else ASPath.parse(text) for text in path_texts
    )
    return PolicyAtom(
        atom_id, frozenset(Prefix.parse(t) for t in prefixes), paths
    )


def atoms(*items):
    return AtomSet(list(items), VP)


def stable_pair():
    """The same 2-prefix atom at t and t+1."""
    first = atoms(atom(0, [P[0], P[1]], ["1 9", "2 9", "3 9"]))
    second = atoms(atom(10, [P[0], P[1]], ["1 9", "2 9", "3 9"]))
    return first, second


class TestDetection:
    def test_no_split_when_composition_stable(self):
        first, second = stable_pair()
        third = atoms(atom(20, [P[0], P[1]], ["1 8 9", "2 8 9", "3 8 9"]))
        # Paths changed wholesale but the grouping held: not a split.
        assert detect_splits(first, second, third) == []

    def test_split_detected(self):
        first, second = stable_pair()
        third = atoms(
            atom(20, [P[0]], ["1 9", "2 9", "3 9"]),
            atom(21, [P[1]], ["1 9", "2 8 9", "3 9"]),
        )
        events = detect_splits(first, second, third)
        assert len(events) == 1
        assert events[0].prefixes == {Prefix.parse(P[0]), Prefix.parse(P[1])}
        assert events[0].fragment_count == 2

    def test_atom_must_be_stable_before_split(self):
        # Present only at t+1 (not t) -> not counted.
        first = atoms(atom(0, [P[0]], ["1 9", "2 9", "3 9"]),
                      atom(1, [P[1]], ["1 8 9", "2 9", "3 9"]))
        second = atoms(atom(10, [P[0], P[1]], ["1 9", "2 9", "3 9"]))
        third = atoms(
            atom(20, [P[0]], ["1 9", "2 9", "3 9"]),
            atom(21, [P[1]], ["1 8 9", "2 9", "3 9"]),
        )
        assert detect_splits(first, second, third) == []

    def test_merges_ignored(self):
        first = atoms(
            atom(0, [P[0]], ["1 9", "2 9", "3 9"]),
            atom(1, [P[1]], ["1 8 9", "2 9", "3 9"]),
        )
        second = atoms(
            atom(10, [P[0]], ["1 9", "2 9", "3 9"]),
            atom(11, [P[1]], ["1 8 9", "2 9", "3 9"]),
        )
        third = atoms(atom(20, [P[0], P[1]], ["1 9", "2 9", "3 9"]))
        assert detect_splits(first, second, third) == []

    def test_vanished_prefix_counts_as_fragment(self):
        first, second = stable_pair()
        third = atoms(atom(20, [P[0]], ["1 9", "2 9", "3 9"]))  # P[1] gone
        events = detect_splits(first, second, third)
        assert len(events) == 1
        assert events[0].fragment_count == 2

    def test_single_prefix_atoms_cannot_split(self):
        first = atoms(atom(0, [P[0]], ["1 9", "2 9", "3 9"]))
        second = atoms(atom(10, [P[0]], ["1 9", "2 9", "3 9"]))
        third = atoms(atom(20, [P[0]], ["1 8 9", "2 8 9", "3 8 9"]))
        assert detect_splits(first, second, third) == []


class TestObservers:
    def test_localized_split_observed_by_one_vp(self):
        first, second = stable_pair()
        # Only VP 2's view diverges between the two prefixes.
        third = atoms(
            atom(20, [P[0]], ["1 9", "2 9", "3 9"]),
            atom(21, [P[1]], ["1 9", "2 7 9", "3 9"]),
        )
        events = detect_splits(first, second, third)
        assert events[0].observer_count == 1
        assert events[0].observers[0] == ("rrc00", 2, "b")

    def test_global_split_observed_by_all(self):
        first, second = stable_pair()
        third = atoms(
            atom(20, [P[0]], ["1 9", "2 9", "3 9"]),
            atom(21, [P[1]], ["1 7 9", "2 7 9", "3 7 9"]),
        )
        events = detect_splits(first, second, third)
        assert events[0].observer_count == 3

    def test_vp_that_never_carried_atom_not_an_observer(self):
        first = atoms(atom(0, [P[0], P[1]], ["1 9", None, "3 9"]))
        second = atoms(atom(10, [P[0], P[1]], ["1 9", None, "3 9"]))
        third = atoms(
            atom(20, [P[0]], ["1 9", None, "3 9"]),
            atom(21, [P[1]], ["1 7 9", None, "3 9"]),
        )
        events = detect_splits(first, second, third)
        observers = {peer for peer in events[0].observers}
        assert ("rrc00", 2, "b") not in observers


class TestAggregation:
    def _events(self):
        first, second = stable_pair()
        third = atoms(
            atom(20, [P[0]], ["1 9", "2 9", "3 9"]),
            atom(21, [P[1]], ["1 9", "2 7 9", "3 9"]),
        )
        return detect_splits(first, second, third)

    def test_observer_distribution(self):
        distribution = observer_count_distribution(self._events())
        assert distribution == {1: 1}

    def test_breakdown(self):
        breakdown = top_observer_breakdown(self._events())
        assert breakdown["single"] == 1
        assert breakdown["multi"] == 0
        assert breakdown["single_top"] == 1
