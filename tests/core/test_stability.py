"""Tests for CAM / MPM stability metrics."""

import pytest
from hypothesis import given, strategies as st

from repro.core.atoms import AtomSet, PolicyAtom
from repro.core.stability import (
    complete_atom_match,
    greedy_atom_mapping,
    maximized_prefix_match,
    stability_pair,
)
from repro.net.prefix import Prefix

VP = [("rrc00", 1, "a")]


def make_atoms(partition, id_base=0):
    """partition: list of lists of prefix texts."""
    atoms = [
        PolicyAtom(
            id_base + index,
            frozenset(Prefix.parse(text) for text in group),
            (None,),
        )
        for index, group in enumerate(partition)
    ]
    return AtomSet(atoms, VP)


P = [f"10.0.{i}.0/24" for i in range(8)]


class TestCAM:
    def test_identical_sets(self):
        first = make_atoms([[P[0], P[1]], [P[2]]])
        second = make_atoms([[P[2]], [P[0], P[1]]], id_base=10)
        assert complete_atom_match(first, second) == 1.0

    def test_one_atom_split(self):
        first = make_atoms([[P[0], P[1]], [P[2]]])
        second = make_atoms([[P[0]], [P[1]], [P[2]]], id_base=10)
        assert complete_atom_match(first, second) == pytest.approx(0.5)

    def test_merge_breaks_both_sides(self):
        first = make_atoms([[P[0]], [P[1]]])
        second = make_atoms([[P[0], P[1]]], id_base=10)
        assert complete_atom_match(first, second) == 0.0

    def test_asymmetry(self):
        first = make_atoms([[P[0], P[1]]])
        second = make_atoms([[P[0], P[1]], [P[2]]], id_base=10)
        assert complete_atom_match(first, second) == 1.0
        assert complete_atom_match(second, first) == pytest.approx(0.5)

    def test_empty(self):
        empty = make_atoms([])
        assert complete_atom_match(empty, empty) == 0.0


class TestMPM:
    def test_identical(self):
        first = make_atoms([[P[0], P[1]], [P[2]]])
        second = make_atoms([[P[0], P[1]], [P[2]]], id_base=10)
        assert maximized_prefix_match(first, second) == 1.0

    def test_split_keeps_majority(self):
        # 3-prefix atom splits 2+1: the mapping keeps 2 of 3 in place,
        # and the split-off single prefix maps one-to-one as well.
        first = make_atoms([[P[0], P[1], P[2]]])
        second = make_atoms([[P[0], P[1]], [P[2]]], id_base=10)
        assert maximized_prefix_match(first, second) == pytest.approx(2 / 3)

    def test_mapping_is_one_to_one(self):
        first = make_atoms([[P[0], P[1]], [P[2], P[3]]])
        second = make_atoms([[P[0], P[1], P[2], P[3]]], id_base=10)
        mapping = greedy_atom_mapping(first, second)
        assert len(set(mapping.values())) == len(mapping)
        # Only one t1 atom can claim the merged atom: 2 of 4 prefixes.
        assert maximized_prefix_match(first, second) == pytest.approx(0.5)

    def test_prefix_departed_entirely(self):
        first = make_atoms([[P[0], P[1]]])
        second = make_atoms([[P[0], P[2]]], id_base=10)
        assert maximized_prefix_match(first, second) == pytest.approx(0.5)

    def test_mpm_at_least_cam_weighted(self):
        # Any atom matched exactly by CAM contributes all its prefixes
        # to MPM, so with uniform sizes MPM >= CAM.
        first = make_atoms([[P[0]], [P[1]], [P[2]], [P[3]]])
        second = make_atoms([[P[0]], [P[1]], [P[2], P[3]]], id_base=10)
        cam, mpm = stability_pair(first, second)
        assert mpm >= cam


# ----------------------------------------------------------------------
# Property-based: random repartitions.
# ----------------------------------------------------------------------

@st.composite
def partitions(draw, prefixes=tuple(P[:6])):
    labels = draw(
        st.lists(
            st.integers(min_value=0, max_value=3),
            min_size=len(prefixes),
            max_size=len(prefixes),
        )
    )
    groups = {}
    for prefix, label in zip(prefixes, labels):
        groups.setdefault(label, []).append(prefix)
    return list(groups.values())


@given(partitions())
def test_self_stability_is_perfect(partition):
    atoms = make_atoms(partition)
    later = make_atoms(partition, id_base=50)
    assert complete_atom_match(atoms, later) == 1.0
    assert maximized_prefix_match(atoms, later) == 1.0


@given(partitions(), partitions())
def test_metrics_bounded(first_partition, second_partition):
    first = make_atoms(first_partition)
    second = make_atoms(second_partition, id_base=50)
    cam, mpm = stability_pair(first, second)
    assert 0.0 <= cam <= 1.0
    assert 0.0 <= mpm <= 1.0


@given(partitions(), partitions())
def test_mpm_counts_only_real_overlap(first_partition, second_partition):
    first = make_atoms(first_partition)
    second = make_atoms(second_partition, id_base=50)
    mpm = maximized_prefix_match(first, second)
    total = sum(atom.size for atom in first)
    shared = len(first.prefixes() & second.prefixes())
    if total:
        assert mpm <= shared / total + 1e-9
