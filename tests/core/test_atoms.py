"""Tests for policy-atom computation on hand-built snapshots."""


from repro.bgp.attributes import PathAttributes
from repro.bgp.messages import ElementType, RouteElement, RouteRecord
from repro.bgp.rib import RIBSnapshot
from repro.core.atoms import compute_atoms
from repro.net.aspath import ASPath
from repro.net.prefix import Prefix


def build_snapshot(tables):
    """tables: {(collector, peer_asn): {prefix_text: path_text}}"""
    records = []
    for (collector, peer_asn), entries in tables.items():
        elements = [
            RouteElement(
                ElementType.RIB,
                Prefix.parse(prefix_text),
                PathAttributes(ASPath.parse(path_text)),
            )
            for prefix_text, path_text in entries.items()
        ]
        records.append(
            RouteRecord(
                "rib", "ris", collector, peer_asn, f"10.9.{peer_asn}.1", 100, elements
            )
        )
    return RIBSnapshot.from_records(records)


P1, P2, P3 = "10.0.1.0/24", "10.0.2.0/24", "10.0.3.0/24"


class TestGrouping:
    def test_same_paths_one_atom(self):
        snapshot = build_snapshot(
            {
                ("rrc00", 1): {P1: "1 5 9", P2: "1 5 9"},
                ("rrc00", 2): {P1: "2 6 9", P2: "2 6 9"},
            }
        )
        atoms = compute_atoms(snapshot)
        assert len(atoms) == 1
        assert atoms.atoms[0].prefixes == {Prefix.parse(P1), Prefix.parse(P2)}
        assert atoms.atoms[0].origin == 9

    def test_divergence_at_any_vp_splits(self):
        snapshot = build_snapshot(
            {
                ("rrc00", 1): {P1: "1 5 9", P2: "1 5 9"},
                ("rrc00", 2): {P1: "2 6 9", P2: "2 7 9"},  # differs here
            }
        )
        atoms = compute_atoms(snapshot)
        assert len(atoms) == 2

    def test_missing_prefix_forces_empty_path_split(self):
        # §2.3: a prefix absent from one VP cannot share an atom with a
        # prefix present there, even if all other paths agree.
        snapshot = build_snapshot(
            {
                ("rrc00", 1): {P1: "1 5 9", P2: "1 5 9"},
                ("rrc00", 2): {P1: "2 6 9"},  # P2 missing here
            }
        )
        atoms = compute_atoms(snapshot)
        assert len(atoms) == 2

    def test_prefixes_missing_at_same_vps_group(self):
        snapshot = build_snapshot(
            {
                ("rrc00", 1): {P1: "1 5 9", P2: "1 5 9"},
                ("rrc00", 2): {P3: "2 8 7"},
            }
        )
        atoms = compute_atoms(snapshot)
        assert len(atoms) == 2

    def test_prepending_separates_atoms(self):
        # Method (iii): raw paths group; prepending makes distinct atoms.
        snapshot = build_snapshot(
            {("rrc00", 1): {P1: "1 5 9", P2: "1 5 9 9"}}
        )
        assert len(compute_atoms(snapshot)) == 2

    def test_strip_prepending_merges_atoms(self):
        # Method (i): prepending removed before grouping.
        snapshot = build_snapshot(
            {("rrc00", 1): {P1: "1 5 9", P2: "1 5 9 9"}}
        )
        atoms = compute_atoms(snapshot, strip_prepending=True)
        assert len(atoms) == 1

    def test_moas_atoms_have_multiple_origins(self):
        snapshot = build_snapshot(
            {
                ("rrc00", 1): {P1: "1 5 9"},
                ("rrc00", 2): {P1: "2 6 8"},  # different origin!
            }
        )
        atoms = compute_atoms(snapshot)
        assert len(atoms) == 1
        atom = atoms.atoms[0]
        assert atom.origins() == {8, 9}
        assert atom.origin is None


class TestAsSets:
    def test_singleton_set_expanded(self):
        snapshot = build_snapshot(
            {
                ("rrc00", 1): {P1: "1 5 {9}", P2: "1 5 9"},
            }
        )
        atoms = compute_atoms(snapshot)
        assert len(atoms) == 1  # {9} expands to 9, paths equal

    def test_multi_set_path_dropped(self):
        snapshot = build_snapshot(
            {
                ("rrc00", 1): {P1: "1 5 {8,9}", P2: "1 5 9"},
                ("rrc00", 2): {P1: "2 5 9", P2: "2 5 9"},
            }
        )
        atoms = compute_atoms(snapshot)
        # P1's path at peer 1 is removed -> empty there -> separate atom.
        assert len(atoms) == 2

    def test_fully_dropped_prefix_disappears(self):
        snapshot = build_snapshot(
            {("rrc00", 1): {P1: "1 5 {8,9}"}}
        )
        atoms = compute_atoms(snapshot)
        assert atoms.prefix_count() == 0

    def test_sets_preserved_when_disabled(self):
        snapshot = build_snapshot(
            {("rrc00", 1): {P1: "1 5 {8,9}", P2: "1 5 {8,9}"}}
        )
        atoms = compute_atoms(snapshot, expand_singleton_sets=False)
        assert atoms.prefix_count() == 2
        assert len(atoms) == 1


class TestScoping:
    def test_vantage_point_restriction(self):
        snapshot = build_snapshot(
            {
                ("rrc00", 1): {P1: "1 5 9", P2: "1 5 9"},
                ("rrc00", 2): {P1: "2 6 9", P2: "2 7 9"},
            }
        )
        restricted = compute_atoms(
            snapshot, vantage_points=[("rrc00", 1, "10.9.1.1")]
        )
        assert len(restricted) == 1  # the splitting VP is excluded

    def test_prefix_restriction(self):
        snapshot = build_snapshot(
            {("rrc00", 1): {P1: "1 5 9", P2: "1 6 9"}}
        )
        atoms = compute_atoms(snapshot, prefixes=[Prefix.parse(P1)])
        assert atoms.prefix_count() == 1

    def test_vantage_point_order_does_not_matter(self):
        snapshot = build_snapshot(
            {
                ("rrc00", 1): {P1: "1 5 9", P2: "1 5 9"},
                ("rrc00", 2): {P1: "2 6 9", P2: "2 6 9"},
            }
        )
        forward = compute_atoms(
            snapshot,
            vantage_points=[("rrc00", 1, "10.9.1.1"), ("rrc00", 2, "10.9.2.1")],
        )
        backward = compute_atoms(
            snapshot,
            vantage_points=[("rrc00", 2, "10.9.2.1"), ("rrc00", 1, "10.9.1.1")],
        )
        assert forward.prefix_sets() == backward.prefix_sets()


class TestIndexes:
    def test_by_prefix(self):
        snapshot = build_snapshot({("rrc00", 1): {P1: "1 5 9", P2: "1 6 9"}})
        atoms = compute_atoms(snapshot)
        atom = atoms.atom_of(Prefix.parse(P1))
        assert atom is not None and Prefix.parse(P1) in atom.prefixes
        assert atoms.atom_of(Prefix.parse("203.0.113.0/24")) is None

    def test_atoms_by_origin(self):
        snapshot = build_snapshot(
            {("rrc00", 1): {P1: "1 5 9", P2: "1 6 9", P3: "1 6 8"}}
        )
        grouped = compute_atoms(snapshot).atoms_by_origin()
        assert len(grouped[9]) == 2
        assert len(grouped[8]) == 1

    def test_visible_at(self):
        snapshot = build_snapshot(
            {
                ("rrc00", 1): {P1: "1 5 9"},
                ("rrc00", 2): {},
            }
        )
        atoms = compute_atoms(
            snapshot,
            vantage_points=[("rrc00", 1, "10.9.1.1"), ("rrc00", 2, "10.9.2.1")],
        )
        assert atoms.atoms[0].visible_at() == (0,)

    def test_integration_atom_count_bounds(self, atoms_2024):
        atoms = atoms_2024.atoms
        assert 0 < len(atoms) <= atoms.prefix_count()
        assert atoms.origin_count() <= len(atoms)


class TestNormalisationCache:
    """The per-call normalisation cache must key on path *value*.

    Keying on ``id(raw)`` is unsafe when attribute objects are built on
    access (ids are reused after gc) and costs two lookups per hit; the
    cache keys on the hashable ``ASPath`` itself instead.
    """

    def test_equal_but_distinct_paths_normalise_once(self, monkeypatch):
        import repro.core.atoms as atoms_module

        calls = []
        real_prepare = atoms_module._prepare_path

        def counting_prepare(path, expand, strip):
            calls.append(path)
            return real_prepare(path, expand, strip)

        monkeypatch.setattr(atoms_module, "_prepare_path", counting_prepare)

        # Two VPs carrying equal-valued but distinct ASPath objects, as
        # a parser materialising attributes per record would produce.
        path_a = ASPath.parse("1 5 {7} 9")
        path_b = ASPath.parse("1 5 {7} 9")
        assert path_a == path_b and path_a is not path_b
        snapshot = RIBSnapshot()
        for peer, path in ((1, path_a), (2, path_b)):
            snapshot.apply_record(
                RouteRecord(
                    "rib", "ris", "rrc00", peer, f"10.9.{peer}.1", 100,
                    [
                        RouteElement(
                            ElementType.RIB, Prefix.parse(P1),
                            PathAttributes(path),
                        ),
                        RouteElement(
                            ElementType.RIB, Prefix.parse(P2),
                            PathAttributes(path),
                        ),
                    ],
                )
            )
        atoms = compute_atoms(snapshot)
        # One normalisation for the whole snapshot: the second peer's
        # equal-valued path is a cache hit, not a new id entry.
        assert len(calls) == 1
        assert len(atoms) == 1
        assert atoms.atoms[0].paths[0] == ASPath.parse("1 5 7 9")

    def test_cache_handles_paths_normalising_to_none(self, monkeypatch):
        import repro.core.atoms as atoms_module

        calls = []
        real_prepare = atoms_module._prepare_path

        def counting_prepare(path, expand, strip):
            calls.append(path)
            return real_prepare(path, expand, strip)

        monkeypatch.setattr(atoms_module, "_prepare_path", counting_prepare)

        # A multi-element AS_SET normalises to None (route dropped);
        # the sentinel pattern must cache that None as a real hit.
        snapshot = build_snapshot(
            {
                ("rrc00", 1): {P1: "1 {5, 6} 9", P2: "1 {5, 6} 9"},
                ("rrc00", 2): {P1: "2 8 9", P2: "2 8 9"},
            }
        )
        atoms = compute_atoms(snapshot)
        assert len(calls) == 2  # one per distinct path value
        assert len(atoms) == 1
        assert atoms.atoms[0].paths[0] is None
