"""Tests for incremental atom maintenance (repro.core.incremental)."""

import pytest

from repro.bgp.attributes import PathAttributes
from repro.bgp.messages import ElementType, RouteElement, RouteRecord
from repro.bgp.rib import RIBSnapshot
from repro.core.atoms import compute_atoms
from repro.core.incremental import AtomIndex, PathInternPool
from repro.net.aspath import ASPath
from repro.net.prefix import Prefix
from repro.util.determinism import derive_rng

PEERS = [("rrc00", 1, "10.9.1.1"), ("rrc00", 2, "10.9.2.1"),
         ("rrc01", 3, "10.9.3.1")]


def rib_record(peer, entries, timestamp=100):
    collector, peer_asn, peer_address = peer
    elements = [
        RouteElement(
            ElementType.RIB, Prefix.parse(text),
            PathAttributes(ASPath.parse(path)),
        )
        for text, path in entries
    ]
    return RouteRecord(
        "rib", "ris", collector, peer_asn, peer_address, timestamp, elements
    )


def update_record(peer, announced=(), withdrawn=(), timestamp=200):
    collector, peer_asn, peer_address = peer
    elements = [
        RouteElement(
            ElementType.ANNOUNCEMENT, Prefix.parse(text),
            PathAttributes(ASPath.parse(path)),
        )
        for text, path in announced
    ]
    elements += [
        RouteElement(ElementType.WITHDRAWAL, Prefix.parse(text))
        for text in withdrawn
    ]
    return RouteRecord(
        "update", "ris", collector, peer_asn, peer_address, timestamp, elements
    )


def assert_identical(index, snapshot, vantage_points, prefixes=None):
    """Incremental result must match from-scratch computation exactly:
    same atoms in the same order, same prefix sets, same path vectors."""
    expected = compute_atoms(
        snapshot, vantage_points=vantage_points, prefixes=prefixes
    )
    actual = index.atoms()
    assert len(actual) == len(expected)
    for ours, theirs in zip(actual.atoms, expected.atoms):
        assert ours.atom_id == theirs.atom_id
        assert ours.prefixes == theirs.prefixes
        assert ours.paths == theirs.paths
    assert actual.vantage_points == expected.vantage_points


def base_snapshot():
    snapshot = RIBSnapshot()
    snapshot.apply_record(rib_record(PEERS[0], [
        ("10.0.1.0/24", "1 5 9"), ("10.0.2.0/24", "1 5 9"),
        ("10.0.3.0/24", "1 6 8"),
    ]))
    snapshot.apply_record(rib_record(PEERS[1], [
        ("10.0.1.0/24", "2 5 9"), ("10.0.2.0/24", "2 5 9"),
        ("10.0.3.0/24", "2 6 8"),
    ]))
    snapshot.apply_record(rib_record(PEERS[2], [
        ("10.0.1.0/24", "3 5 9"), ("10.0.2.0/24", "3 5 9"),
    ]))
    return snapshot


class TestAtomIndexBasics:
    def test_initial_build_matches_batch(self):
        snapshot = base_snapshot()
        index = AtomIndex(snapshot, vantage_points=PEERS)
        assert_identical(index, snapshot, PEERS)

    def test_announcement_moves_prefix_between_atoms(self):
        snapshot = base_snapshot()
        index = AtomIndex(snapshot, vantage_points=PEERS)
        index.atoms()
        before = index.stats.key_recomputations
        # 10.0.2.0/24 diverges at peer 2: splits off the shared atom.
        snapshot.apply_record(update_record(PEERS[1], announced=[
            ("10.0.2.0/24", "2 7 9"),
        ]))
        assert index.dirty_count == 1
        assert_identical(index, snapshot, PEERS)
        assert index.stats.key_recomputations == before + 1

    def test_withdrawal_everywhere_removes_prefix(self):
        snapshot = base_snapshot()
        index = AtomIndex(snapshot, vantage_points=PEERS)
        for peer in PEERS:
            snapshot.apply_record(
                update_record(peer, withdrawn=["10.0.1.0/24"])
            )
        assert_identical(index, snapshot, PEERS)
        assert Prefix.parse("10.0.1.0/24") not in index.atoms().by_prefix

    def test_new_prefix_enters_dynamic_universe(self):
        snapshot = base_snapshot()
        index = AtomIndex(snapshot, vantage_points=PEERS)
        snapshot.apply_record(update_record(PEERS[0], announced=[
            ("10.0.9.0/24", "1 4 7"),
        ]))
        assert_identical(index, snapshot, PEERS)
        assert Prefix.parse("10.0.9.0/24") in index.atoms().by_prefix

    def test_mutations_at_non_vp_peers_ignored(self):
        snapshot = base_snapshot()
        index = AtomIndex(snapshot, vantage_points=PEERS[:2])
        snapshot.apply_record(update_record(PEERS[2], announced=[
            ("10.0.1.0/24", "3 9 9"),
        ]))
        assert index.dirty_count == 0
        assert_identical(index, snapshot, PEERS[:2])

    def test_explicit_universe_filters_mutations(self):
        snapshot = base_snapshot()
        universe = {Prefix.parse("10.0.1.0/24"), Prefix.parse("10.0.2.0/24")}
        index = AtomIndex(snapshot, vantage_points=PEERS, prefixes=universe)
        snapshot.apply_record(update_record(PEERS[0], announced=[
            ("10.0.3.0/24", "1 2 3"),  # outside the universe
        ]))
        assert index.dirty_count == 0
        assert_identical(index, snapshot, PEERS, prefixes=universe)

    def test_set_universe_moves_the_window(self):
        snapshot = base_snapshot()
        first = {Prefix.parse("10.0.1.0/24"), Prefix.parse("10.0.2.0/24")}
        second = {Prefix.parse("10.0.2.0/24"), Prefix.parse("10.0.3.0/24")}
        index = AtomIndex(snapshot, vantage_points=PEERS, prefixes=first)
        index.atoms()
        index.set_universe(second)
        assert_identical(index, snapshot, PEERS, prefixes=second)

    def test_detach_stops_tracking(self):
        snapshot = base_snapshot()
        index = AtomIndex(snapshot, vantage_points=PEERS)
        index.detach()
        snapshot.apply_record(update_record(PEERS[0], announced=[
            ("10.0.1.0/24", "1 9 9"),
        ]))
        assert index.dirty_count == 0

    def test_pool_option_mismatch_rejected(self):
        snapshot = base_snapshot()
        pool = PathInternPool(strip_prepending=True)
        with pytest.raises(ValueError):
            AtomIndex(snapshot, vantage_points=PEERS, pool=pool)


class TestInternPool:
    def test_equal_paths_share_one_instance(self):
        pool = PathInternPool()
        a = pool.path(ASPath.parse("1 5 {7} 9"))
        b = pool.path(ASPath.parse("1 5 {7} 9"))
        assert a is b
        assert a == ASPath.parse("1 5 7 9")

    def test_distinct_raws_same_normal_form_interned(self):
        pool = PathInternPool()
        a = pool.path(ASPath.parse("1 5 {7} 9"))
        b = pool.path(ASPath.parse("1 5 7 9"))
        assert a is b

    def test_multi_set_paths_drop_to_none(self):
        pool = PathInternPool()
        assert pool.path(ASPath.parse("1 {5, 6} 9")) is None

    def test_vectors_interned(self):
        pool = PathInternPool()
        p = pool.path(ASPath.parse("1 5 9"))
        assert pool.vector((p, None)) is pool.vector((p, None))


class TestSyncTo:
    def test_sync_marks_only_changed_prefixes(self):
        snapshot = base_snapshot()
        index = AtomIndex(snapshot.copy(), vantage_points=PEERS)
        index.atoms()
        before = index.stats.key_recomputations

        target = snapshot.copy()
        target.apply_record(update_record(PEERS[1], announced=[
            ("10.0.3.0/24", "2 6 6 8"),
        ]))
        index.sync_to(target)
        assert index.dirty_count == 1
        assert_identical(index, target, PEERS)
        assert index.stats.key_recomputations == before + 1

    def test_sync_handles_withdrawals(self):
        snapshot = base_snapshot()
        index = AtomIndex(snapshot.copy(), vantage_points=PEERS)
        target = snapshot.copy()
        for peer in PEERS:
            target.apply_record(update_record(peer, withdrawn=["10.0.2.0/24"]))
        index.sync_to(target)
        assert_identical(index, target, PEERS)

    def test_identical_snapshots_sync_for_free(self):
        snapshot = base_snapshot()
        index = AtomIndex(snapshot.copy(), vantage_points=PEERS)
        index.atoms()
        before = index.stats.key_recomputations
        index.sync_to(snapshot.copy())
        assert index.dirty_count == 0
        assert index.stats.key_recomputations == before


class TestRandomizedChurn:
    """Property-style: the index equals from-scratch computation after
    every step of a long randomized update stream."""

    PREFIX_POOL = [f"10.{i}.0.0/16" for i in range(24)]
    PATH_TAILS = [[5, 9], [6, 9], [5, 8], [7, 7, 7], [4, 2]]

    def _random_update(self, rng, step):
        peer = rng.choice(PEERS)
        prefix = rng.choice(self.PREFIX_POOL)
        if rng.random() < 0.3:
            return update_record(peer, withdrawn=[prefix], timestamp=200 + step)
        tail = rng.choice(self.PATH_TAILS)
        path = " ".join(str(asn) for asn in [peer[1]] + tail)
        return update_record(
            peer, announced=[(prefix, path)], timestamp=200 + step
        )

    def test_index_tracks_100_plus_updates(self):
        rng = derive_rng(20260806, "incremental-churn")
        snapshot = RIBSnapshot()
        for peer in PEERS:
            snapshot.apply_record(rib_record(peer, [
                (text, f"{peer[1]} 5 9") for text in self.PREFIX_POOL[:12]
            ]))
        index = AtomIndex(snapshot, vantage_points=PEERS)
        assert_identical(index, snapshot, PEERS)
        for step in range(120):
            snapshot.apply_record(self._random_update(rng, step))
            assert_identical(index, snapshot, PEERS)

    def test_batched_refresh_matches_too(self):
        """Refreshing once after many updates is also exact."""
        rng = derive_rng(20260806, "incremental-churn-batched")
        snapshot = RIBSnapshot()
        for peer in PEERS:
            snapshot.apply_record(rib_record(peer, [
                (text, f"{peer[1]} 6 8") for text in self.PREFIX_POOL
            ]))
        index = AtomIndex(snapshot, vantage_points=PEERS)
        for step in range(150):
            snapshot.apply_record(self._random_update(rng, step))
        assert_identical(index, snapshot, PEERS)

    def test_fewer_recomputations_than_full_rebuilds(self):
        """The economy claim: per-step key recomputations stay bounded
        by the churn, far below the prefix count."""
        rng = derive_rng(20260806, "incremental-churn-economy")
        snapshot = RIBSnapshot()
        for peer in PEERS:
            snapshot.apply_record(rib_record(peer, [
                (text, f"{peer[1]} 5 9") for text in self.PREFIX_POOL
            ]))
        index = AtomIndex(snapshot, vantage_points=PEERS)
        index.atoms()
        base = index.stats.key_recomputations
        steps = 100
        for step in range(steps):
            snapshot.apply_record(self._random_update(rng, step))
            index.atoms()
        per_step = (index.stats.key_recomputations - base) / steps
        # Each update touches exactly one prefix here, so incremental
        # work is ~1 key/step vs len(PREFIX_POOL) for a rebuild.
        assert per_step <= 2
        assert per_step * 3 <= len(self.PREFIX_POOL)


class TestDirtySetEconomy:
    """dirty_marked counts unique prefixes, never mutation events.

    The live pipeline reports per-window dirty-set economy straight
    from :class:`IncrementalStats`; a prefix flapping ten times inside
    one window is *one* unit of pending work, and the stats must say
    so (regression: dirty_marked used to grow per mutation event).
    """

    def test_repeat_mutations_of_one_prefix_count_once(self):
        snapshot = base_snapshot()
        index = AtomIndex(snapshot, vantage_points=PEERS)
        assert index.stats.dirty_marked == 0
        for flap in range(10):
            snapshot.apply_record(update_record(
                PEERS[0],
                announced=[("10.0.1.0/24", f"1 {4 + flap % 2} 9")],
                timestamp=200 + flap,
            ))
        assert index.dirty_count == 1
        assert index.stats.dirty_marked == 1
        assert index.refresh() == 1
        assert index.stats.dirty_sizes == [1]
        assert_identical(index, snapshot, PEERS)

    def test_distinct_prefixes_still_count_individually(self):
        snapshot = base_snapshot()
        index = AtomIndex(snapshot, vantage_points=PEERS)
        snapshot.apply_record(update_record(
            PEERS[0], announced=[("10.0.1.0/24", "1 7 9")]
        ))
        snapshot.apply_record(update_record(
            PEERS[1], announced=[("10.0.1.0/24", "2 7 9"),
                                 ("10.0.2.0/24", "2 7 9")]
        ))
        assert index.stats.dirty_marked == 2
        assert index.refresh() == 2

    def test_refresh_clears_then_counts_anew(self):
        snapshot = base_snapshot()
        index = AtomIndex(snapshot, vantage_points=PEERS)
        snapshot.apply_record(update_record(
            PEERS[0], announced=[("10.0.1.0/24", "1 7 9")]
        ))
        index.refresh()
        snapshot.apply_record(update_record(
            PEERS[0], announced=[("10.0.1.0/24", "1 8 9")]
        ))
        assert index.stats.dirty_marked == 2
        assert index.refresh() == 1
        assert index.stats.dirty_sizes == [1, 1]
        assert_identical(index, snapshot, PEERS)
