"""Tests for the discrete-event convergence engine.

The load-bearing gate is quiescence parity: once the event queue
drains, the rendered collector tables — and therefore the atom ids
computed from them — must be value-identical to the equilibrium
renderer's.  The property tests check what parity cannot: that the
*transient* states visited mid-convergence are internally consistent.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.pipeline import compute_policy_atoms
from repro.simulation.events import (
    CLASS_CUSTOMER,
    ConvergenceError,
    ConvergenceRun,
    quiescence_parity,
)
from repro.simulation.scenario import SCENARIOS, SimulatedInternet, apply_scenario
from repro.stream.live import LiveConfig, LivePipeline
from tests.conftest import TEST_WORLD

START = "2004-01-15 08:00"


def converged(scenario="quiet", **kwargs):
    """A fresh simulator plus a run converged through ``scenario``."""
    sim = SimulatedInternet(TEST_WORLD, start=START)
    run = sim.converge(START, scenario=scenario, **kwargs)
    run.run_to_quiescence()
    return sim, run


@pytest.fixture(scope="module")
def quiet():
    return converged("quiet")


class TestQuiescenceParity:
    def test_initial_convergence_matches_equilibrium(self, quiet):
        sim, run = quiet
        assert quiescence_parity(run, sim.engine) == []

    def test_atom_ids_identical(self, quiet):
        sim, run = quiet
        ours = compute_policy_atoms(list(run.rib_records()))
        moment = run.start_ts + int(run.now)
        reference = compute_policy_atoms(list(sim.rib_records(moment)))
        assert [
            (atom.atom_id, atom.prefixes, atom.paths) for atom in ours.atoms
        ] == [
            (atom.atom_id, atom.prefixes, atom.paths)
            for atom in reference.atoms
        ]

    @pytest.mark.parametrize("name", sorted(SCENARIOS))
    def test_parity_restored_after_every_scenario(self, name):
        sim, run = converged(name)
        assert quiescence_parity(run, sim.engine) == []

    def test_refuses_mid_convergence(self, quiet):
        _, run = quiet
        run.schedule(run.now + 5.0, lambda: None)
        try:
            problems = quiescence_parity(run)
            assert problems and "not drained" in problems[0]
        finally:
            run.run_to_quiescence()

    def test_unknown_scenario_rejected(self, quiet):
        _, run = quiet
        with pytest.raises(ValueError, match="unknown scenario"):
            apply_scenario(run, "nope")


class TestDeterminism:
    def test_same_seed_same_run(self):
        def build():
            sim = SimulatedInternet(TEST_WORLD, start=START)
            run = sim.converge(START, scenario="flap-storm",
                               record_updates=True)
            final = run.run_to_quiescence()
            return final, run.update_records()

        (final_a, updates_a), (final_b, updates_b) = build(), build()
        assert final_a == final_b
        assert len(updates_a) == len(updates_b)
        for left, right in zip(updates_a, updates_b):
            assert left.timestamp == right.timestamp
            assert left.peer_asn == right.peer_asn
            assert left.elements == right.elements

    def test_max_events_budget_raises(self):
        sim = SimulatedInternet(TEST_WORLD, start=START)
        run = ConvergenceRun(sim.world)
        run.settle()
        with pytest.raises(ConvergenceError):
            run.run_to_quiescence(max_events=3)


def assert_internally_consistent(run):
    """Every selected route is loop-free, export-legal, and anchored.

    Holds at *any* sim time (no leaks configured): relationships are
    static and each hop on a stored path was export-legal when sent —
    learned-route exports require a customer-class route or a customer
    importer, exactly the valley-free discipline.
    """
    for asn in sorted(run.routers):
        router = run.routers[asn]
        for (origin, unit_id), (route, _tag) in router.loc_rib.items():
            raw = (asn,) + route.path
            assert raw[-1] == origin, "path must end at the origin"
            # Origin prepending repeats the origin ASN consecutively;
            # compress those before the loop and legality checks.
            path = [raw[0]]
            for hop in raw[1:]:
                if hop != path[-1]:
                    path.append(hop)
            assert len(set(path)) == len(path), f"AS loop in {raw}"
            for here in range(len(path) - 1):
                importer, exporter = path[here], path[here + 1]
                exp = run.routers[exporter]
                assert importer in exp.neighbors()
                if exporter == origin:
                    assert (importer in exp.providers
                            or importer in exp.peers), (
                        f"origin AS{exporter} exported to its own customer"
                    )
                else:
                    learned_from = path[here + 2]
                    if exp.neighbor_class[learned_from] != CLASS_CUSTOMER:
                        assert importer in exp.customers, (
                            f"valley at AS{exporter}: non-customer route "
                            f"exported to non-customer AS{importer}"
                        )


class TestTransientConsistency:
    @settings(max_examples=8, deadline=None)
    @given(offsets=st.lists(st.integers(0, 420), min_size=1, max_size=4))
    def test_flap_storm_snapshots_are_valley_free(self, offsets):
        sim = SimulatedInternet(TEST_WORLD, start=START)
        run = sim.converge(START, scenario="flap-storm")
        for offset in sorted(set(offsets)):
            run.run_until(run.scenario_start + offset)
            assert_internally_consistent(run)
        run.run_to_quiescence()
        assert_internally_consistent(run)
        assert quiescence_parity(run, sim.engine) == []

    def test_no_ghost_routes_after_withdrawal(self):
        _, run = converged("quiet")
        victims = [
            asn for asn in sorted(run.routers)
            if run.routers[asn].local_units
        ]
        origin = victims[0]
        unit_id = sorted(run.routers[origin].local_units)[0]
        run.withdraw_unit(origin, unit_id)
        run.run_to_quiescence()
        nlri = (origin, unit_id)
        for asn, router in run.routers.items():
            assert nlri not in router.loc_rib, f"ghost route at AS{asn}"
            for neighbor, table in router.adj_in.items():
                assert nlri not in table, (
                    f"ghost adj-in at AS{asn} from AS{neighbor}"
                )
            for neighbor, sent in router.sent.items():
                assert nlri not in sent, (
                    f"ghost advert memory at AS{asn} toward AS{neighbor}"
                )


class TestLiveIntegration:
    def test_flap_storm_produces_window_churn(self):
        sim = SimulatedInternet(TEST_WORLD, start=START)
        run = sim.converge(START, scenario="flap-storm", record_updates=True)
        baseline = list(run.rib_records())
        run.run_to_quiescence()
        updates = run.update_records()
        assert updates, "flap storm must emit update records"
        times = [record.timestamp for record in updates]
        assert times == sorted(times)

        pipeline = LivePipeline(
            iter(baseline + updates),
            LiveConfig(window_seconds=60, parity="off"),
        )
        result = pipeline.run()
        assert result.windows
        churn = sum(w.created + w.removed for w in result.windows)
        moved = sum(w.key_changes for w in result.windows)
        assert churn > 0 or moved > 0, (
            "a flap storm must register as per-window churn"
        )

    def test_session_reset_emits_updates(self):
        _, run = converged("quiet", record_updates=True)
        vantage = sorted(
            asn for asn in run.routers if asn in run._vp_peers
        )[0]
        neighbor = sorted(run.routers[vantage].neighbors())[0]
        before = len(run.update_records())
        run.reset_session(vantage, neighbor)
        run.run_to_quiescence()
        assert len(run.update_records()) > before
        assert quiescence_parity(run) == []
