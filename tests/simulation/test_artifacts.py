"""Tests for artifact-injection helpers."""

import random


from repro.net.aspath import ASPath
from repro.net.prefix import Prefix
from repro.simulation.artifacts import (
    ADDPATH_WARNINGS,
    LEAKED_PRIVATE_ASN,
    addpath_warning_for,
    garble_path,
    inject_private_asn,
    maybe_as_set_path,
    stable_fraction,
    stuck_route_path,
    stuck_route_prefixes,
)


class TestStableFraction:
    def test_deterministic(self):
        prefix = Prefix.parse("10.0.0.0/8")
        assert stable_fraction(prefix, 7) == stable_fraction(prefix, 7)

    def test_in_unit_interval(self):
        for i in range(50):
            prefix = Prefix.parse(f"10.{i}.0.0/16")
            value = stable_fraction(prefix, i)
            assert 0.0 <= value < 1.0

    def test_salt_changes_value(self):
        prefix = Prefix.parse("10.0.0.0/8")
        values = {stable_fraction(prefix, salt) for salt in range(20)}
        assert len(values) > 10


class TestAddpath:
    def test_warning_rotation(self):
        warnings = {addpath_warning_for(i) for i in range(6)}
        assert warnings == set(ADDPATH_WARNINGS)

    def test_garble_inserts_bogus_hop(self):
        path = ASPath.from_asns([1, 2, 3, 4])
        garbled = garble_path(path, 7)
        assert garbled != path
        assert garbled.contains_asn(23456)  # AS_TRANS
        # The original origin is preserved at the tail.
        assert garbled.origin == 4

    def test_garble_empty_path_safe(self):
        empty = ASPath(())
        assert garble_path(empty, 1) == empty


class TestPrivateAsnLeak:
    def test_inserted_after_peer(self):
        path = ASPath.from_asns([25885, 7, 9])
        leaked = inject_private_asn(path)
        assert leaked.asns()[:2] == (25885, LEAKED_PRIVATE_ASN)
        assert leaked.origin == 9

    def test_empty_path_safe(self):
        empty = ASPath(())
        assert inject_private_asn(empty) == empty


class TestAsSetConversion:
    def test_singleton_or_pair(self):
        prefix = Prefix.parse("10.0.0.0/8")
        path = ASPath.from_asns([1, 2, 3, 4])
        converted = maybe_as_set_path(path, prefix, True, 5)
        assert converted is not None and converted.has_set
        sizes = converted.set_sizes()
        assert sizes in ([1], [2])

    def test_short_path_not_converted(self):
        prefix = Prefix.parse("10.0.0.0/8")
        assert maybe_as_set_path(ASPath.from_asns([1, 2]), prefix, True, 5) is None

    def test_deterministic_per_prefix(self):
        prefix = Prefix.parse("10.0.0.0/8")
        path = ASPath.from_asns([1, 2, 3, 4])
        assert maybe_as_set_path(path, prefix, True, 5) == maybe_as_set_path(
            path, prefix, True, 5
        )


class TestStuckRoutes:
    def test_prefixes_in_shared_space(self):
        shared = Prefix.parse("100.64.0.0/10")
        prefixes = stuck_route_prefixes(random.Random(3), 10)
        assert len(prefixes) == 10
        assert all(shared.contains(p) for p in prefixes)
        assert all(p.length == 24 for p in prefixes)

    def test_path_starts_at_peer(self):
        path = stuck_route_path(random.Random(3), 65001)
        assert path.peer == 65001
        assert path.hop_count() == 4
