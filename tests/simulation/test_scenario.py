"""Tests for the SimulatedInternet facade."""

import pytest

from repro.bgp.rib import RIBSnapshot
from repro.simulation.scenario import SimulatedInternet
from repro.util.dates import parse_utc
from tests.conftest import TEST_WORLD


class TestFacade:
    def test_accepts_string_and_int_times(self):
        sim = SimulatedInternet(TEST_WORLD, start="2004-01-15 08:00")
        assert sim.current_time == parse_utc("2004-01-15 08:00")
        sim.advance_to(sim.current_time + 3600)

    def test_rib_snapshot_materialises(self):
        sim = SimulatedInternet(TEST_WORLD, start="2004-01-15 08:00")
        snapshot = sim.rib_snapshot("2004-01-15 08:00")
        assert isinstance(snapshot, RIBSnapshot)
        assert len(snapshot.peers()) > 0

    def test_time_moves_forward_only(self):
        sim = SimulatedInternet(TEST_WORLD, start="2004-01-15 08:00")
        sim.advance_to("2004-02-01")
        with pytest.raises(ValueError):
            sim.advance_to("2004-01-20")

    def test_cache_reuse_across_nearby_snapshots(self):
        # An individual window can lose the cache to a VP policy change
        # (graph rewire), but across the paper's three stability windows
        # some reuse must occur.
        sim = SimulatedInternet(TEST_WORLD, start="2004-01-15 08:00")
        for when in (
            "2004-01-15 08:00",
            "2004-01-15 16:00",
            "2004-01-16 08:00",
            "2004-01-22 08:00",
        ):
            sim.rib_snapshot(when)
        assert sim.engine.hits > 0
        assert sim.engine.misses < 4 * len(sim.world.origins(4))
