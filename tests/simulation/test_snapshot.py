"""Tests for snapshot rendering and artifact injection."""

import pytest

from repro.bgp.rib import RIBSnapshot
from repro.net.prefix import AF_INET6, Prefix
from repro.simulation.artifacts import LEAKED_PRIVATE_ASN
from repro.simulation.scenario import SimulatedInternet
from tests.conftest import TEST_WORLD


class TestRecordStructure:
    def test_records_are_rib_type(self, records_2004):
        assert records_2004
        assert all(record.record_type == "rib" for record in records_2004)

    def test_every_peer_contributes(self, internet_2004, records_2004):
        peers_in_records = {record.peer_id for record in records_2004}
        layout_peers = {peer.peer_id for peer in internet_2004.world.layout.peers}
        # Stuck-route phantom records reuse real peer ids, so records
        # cannot contain unknown peers.
        assert peers_in_records <= layout_peers
        full_feed = {
            peer.peer_id
            for peer in internet_2004.world.layout.peers
            if peer.full_feed
        }
        assert full_feed <= peers_in_records

    def test_paths_start_with_peer_asn(self, records_2004):
        for record in records_2004[:20]:
            for element in record.elements:
                assert element.attributes.as_path.peer == record.peer_asn

    def test_partial_peers_see_fewer_prefixes(self, internet_2024, records_2024):
        snapshot = RIBSnapshot.from_records(records_2024)
        counts = snapshot.prefix_count_by_peer()
        layout = {p.peer_id: p for p in internet_2024.world.layout.peers}
        full_counts = [c for pid, c in counts.items() if layout[pid].full_feed]
        partial_counts = [
            c for pid, c in counts.items() if not layout[pid].full_feed
        ]
        assert partial_counts, "expected partial peers in 2024"
        assert max(partial_counts) < 0.9 * max(full_counts)

    def test_family_separation(self, internet_2024):
        v6_records = list(internet_2024.rib_records("2024-10-15 08:00", family=AF_INET6))
        assert v6_records
        for record in v6_records[:10]:
            for element in record.elements:
                assert element.prefix.family == AF_INET6


class TestArtifacts:
    @pytest.fixture(scope="class")
    def artifact_world(self):
        # 2021: ADD-PATH and private-ASN windows are active (A8.3).
        sim = SimulatedInternet(TEST_WORLD, start="2021-01-15 08:00")
        records = list(sim.rib_records("2021-01-15 08:00"))
        return sim, records

    def test_addpath_warnings_present(self, artifact_world):
        sim, records = artifact_world
        flagged = {
            p.asn for p in sim.world.layout.peers
            if p.artifact == "addpath" and p.artifact_active(sim.current_time)
        }
        if not flagged:
            pytest.skip("no addpath peer active in this window")
        corrupt = [r for r in records if r.is_corrupt]
        assert corrupt
        assert {r.peer_asn for r in corrupt} <= flagged

    def test_private_asn_leak(self, artifact_world):
        sim, records = artifact_world
        leakers = {
            p.asn for p in sim.world.layout.peers
            if p.artifact == "private_asn" and p.artifact_active(sim.current_time)
        }
        if not leakers:
            pytest.skip("no private-asn peer active in this window")
        found = 0
        for record in records:
            if record.peer_asn in leakers:
                for element in record.elements:
                    if element.attributes.as_path.contains_asn(LEAKED_PRIVATE_ASN):
                        found += 1
        assert found > 0

    def test_duplicate_feeder(self, artifact_world):
        sim, records = artifact_world
        dup_peers = {
            p.asn for p in sim.world.layout.peers
            if p.artifact == "duplicates" and p.artifact_active(sim.current_time)
        }
        if not dup_peers:
            pytest.skip("no duplicates peer active")
        for asn in dup_peers:
            seen, dupes = set(), 0
            for record in records:
                if record.peer_asn != asn:
                    continue
                for element in record.elements:
                    if element.prefix in seen:
                        dupes += 1
                    seen.add(element.prefix)
            assert dupes / max(1, len(seen)) > 0.10

    def test_stuck_routes_single_collector(self, internet_2004, records_2004):
        shared_space = Prefix.parse("100.64.0.0/10")
        by_prefix = {}
        for record in records_2004:
            for element in record.elements:
                if shared_space.contains(element.prefix):
                    by_prefix.setdefault(element.prefix, set()).add(record.collector)
        for collectors in by_prefix.values():
            assert len(collectors) == 1

    def test_as_set_paths_present(self, records_2024):
        with_sets = 0
        total = 0
        for record in records_2024:
            for element in record.elements:
                total += 1
                if element.attributes.as_path.has_set:
                    with_sets += 1
        assert with_sets > 0
        assert with_sets / total < 0.02  # paper: well under 1-2 %


class TestDeterminism:
    def test_same_seed_same_records(self):
        first = SimulatedInternet(TEST_WORLD, start="2004-01-15 08:00")
        second = SimulatedInternet(TEST_WORLD, start="2004-01-15 08:00")
        records_a = list(first.rib_records("2004-01-15 08:00"))
        records_b = list(second.rib_records("2004-01-15 08:00"))
        assert len(records_a) == len(records_b)
        for left, right in zip(records_a, records_b):
            assert left.peer_id == right.peer_id
            assert left.elements == right.elements
