"""Tests for the update-stream generator."""

import pytest

from repro.net.prefix import AF_INET6
from repro.simulation.scenario import SimulatedInternet
from repro.simulation.updates import UpdateStreamConfig, _poisson
from repro.util.dates import HOUR
from repro.util.determinism import derive_rng
from tests.conftest import TEST_WORLD


@pytest.fixture(scope="module")
def update_stream():
    sim = SimulatedInternet(TEST_WORLD, start="2024-10-15 08:00")
    start = sim.current_time
    records = sim.update_records(start, hours=4.0)
    return sim, start, records


class TestStream:
    def test_nonempty_and_sorted(self, update_stream):
        _, _, records = update_stream
        assert records
        times = [record.timestamp for record in records]
        assert times == sorted(times)

    def test_within_window(self, update_stream):
        _, start, records = update_stream
        for record in records:
            assert start <= record.timestamp < start + int(4.5 * HOUR)

    def test_update_type_and_known_peers(self, update_stream):
        sim, _, records = update_stream
        peer_ids = {peer.peer_id for peer in sim.world.layout.peers}
        for record in records:
            assert record.record_type == "update"
            assert record.peer_id in peer_ids

    def test_multi_prefix_records_exist(self, update_stream):
        _, _, records = update_stream
        assert any(len(record) > 1 for record in records), (
            "atoms should sometimes travel whole in one record"
        )

    def test_single_prefix_records_exist(self, update_stream):
        _, _, records = update_stream
        assert any(len(record) == 1 for record in records)

    def test_v6_stream(self):
        sim = SimulatedInternet(TEST_WORLD, start="2024-10-15 08:00")
        records = sim.update_records(sim.current_time, hours=2.0, family=AF_INET6)
        for record in records[:20]:
            for element in record.elements:
                assert element.prefix.family == AF_INET6

    def test_stream_changes_selected_paths(self, update_stream):
        """Updates must *move* routes, not just refresh timestamps."""
        from collections import defaultdict

        from repro.bgp.messages import ElementType

        _, _, records = update_stream
        withdrawals = sum(
            1
            for record in records
            for element in record.elements
            if element.element_type == ElementType.WITHDRAWAL
        )
        assert withdrawals > 0, "flaps must include withdraw legs"
        paths = defaultdict(set)
        for record in records:
            for element in record.elements:
                if element.element_type == ElementType.ANNOUNCEMENT:
                    paths[(record.peer_asn, element.prefix)].add(
                        str(element.attributes.as_path)
                    )
        assert any(len(seen) > 1 for seen in paths.values()), (
            "some (peer, prefix) must see more than one AS path"
        )

    def test_determinism(self):
        def build():
            sim = SimulatedInternet(TEST_WORLD, start="2014-01-15 08:00")
            return sim.update_records(sim.current_time, hours=1.0)

        first, second = build(), build()
        assert len(first) == len(second)
        for left, right in zip(first, second):
            assert left.timestamp == right.timestamp
            assert left.prefixes() == right.prefixes()


class TestConfig:
    def test_pack_probability_declines_with_size(self):
        config = UpdateStreamConfig()
        assert config.pack_probability(2) >= config.pack_probability(5)
        assert config.pack_probability(50) == config.pack_full_floor

    def test_for_year_trend(self):
        early = UpdateStreamConfig.for_year(2004)
        late = UpdateStreamConfig.for_year(2024)
        assert early.pack_full_base > late.pack_full_base


class TestPoisson:
    def test_zero_rate(self):
        rng = derive_rng(1, "poisson")
        assert _poisson(rng, 0.0) == 0

    def test_mean_roughly_matches(self):
        rng = derive_rng(1, "poisson")
        samples = [_poisson(rng, 2.0) for _ in range(2000)]
        mean = sum(samples) / len(samples)
        assert 1.8 < mean < 2.2
