"""Tests for the Gao-Rexford propagation engine, on hand-built graphs.

These pin down the routing semantics everything else depends on:
preference classes, valley-free export, tie-breaking, announcement
sets, prepending, and tag-based selective export.
"""


from repro.bgp.attributes import Community
from repro.net.prefix import Prefix
from repro.simulation.routing import (
    CLASS_CUSTOMER,
    CLASS_PEER,
    CLASS_PROVIDER,
    PropagationEngine,
    propagate,
)
from repro.topology.model import ASGraph, ASNode, Tier
from repro.topology.policies import OriginPolicy, TransitPolicy


def build_graph(nodes, provider_links=(), peer_links=()):
    graph = ASGraph()
    for asn in nodes:
        tier = Tier.TIER1 if asn < 10 else Tier.TRANSIT if asn < 100 else Tier.STUB
        graph.add_as(ASNode(asn, tier))
    for customer, provider in provider_links:
        graph.add_provider_link(customer, provider)
    for left, right in peer_links:
        graph.add_peer_link(left, right)
    return graph


def single_unit_policy(origin, prefix="10.0.0.0/24", **unit_kwargs):
    policy = OriginPolicy(origin, 4)
    policy.new_unit([Prefix.parse(prefix)], **unit_kwargs)
    return policy


class TestBasicPropagation:
    def test_direct_provider_gets_customer_route(self):
        graph = build_graph([100, 10], [(100, 10)])
        policy = single_unit_policy(100)
        routes = propagate(graph, policy, {})
        route = routes[10][0]
        assert route.pref_class == CLASS_CUSTOMER
        assert route.path == (100,)
        assert route.length == 1

    def test_customer_route_propagates_up(self):
        # 100 -> 10 -> 1 (chain of providers)
        graph = build_graph([100, 10, 1], [(100, 10), (10, 1)])
        routes = propagate(graph, single_unit_policy(100), {})
        assert routes[1][0].path == (10, 100)
        assert routes[1][0].pref_class == CLASS_CUSTOMER

    def test_provider_route_propagates_down(self):
        # Sibling customers under one provider: 100,101 -> 10.
        graph = build_graph([100, 101, 10], [(100, 10), (101, 10)])
        routes = propagate(graph, single_unit_policy(100), {})
        assert routes[101][0].path == (10, 100)
        assert routes[101][0].pref_class == CLASS_PROVIDER

    def test_peer_route_single_hop(self):
        graph = build_graph([100, 10, 11], [(100, 10)], [(10, 11)])
        routes = propagate(graph, single_unit_policy(100), {})
        assert routes[11][0].pref_class == CLASS_PEER
        assert routes[11][0].path == (10, 100)

    def test_valley_free_peer_routes_not_reexported_to_peers(self):
        # 100 -> 10; 10 ~ 11 ~ 12 (peer chain): 12 must NOT hear via 11.
        graph = build_graph([100, 10, 11, 12], [(100, 10)], [(10, 11), (11, 12)])
        routes = propagate(graph, single_unit_policy(100), {})
        assert 12 not in routes

    def test_peer_route_exported_to_customers(self):
        # 100 -> 10 ~ 11 -> serves customer 101.
        graph = build_graph([100, 101, 10, 11], [(100, 10), (101, 11)], [(10, 11)])
        routes = propagate(graph, single_unit_policy(100), {})
        assert routes[101][0].path == (11, 10, 100)
        assert routes[101][0].pref_class == CLASS_PROVIDER

    def test_origin_not_in_result(self):
        graph = build_graph([100, 10], [(100, 10)])
        routes = propagate(graph, single_unit_policy(100), {})
        assert 100 not in routes

    def test_empty_policy(self):
        graph = build_graph([100, 10], [(100, 10)])
        assert propagate(graph, OriginPolicy(100, 4), {}) == {}


class TestPreferences:
    def test_customer_beats_peer_and_provider(self):
        # AS 10 can reach 100 via customer (direct) and via peer 11.
        graph = build_graph(
            [100, 10, 11], [(100, 10), (100, 11)], [(10, 11)]
        )
        routes = propagate(graph, single_unit_policy(100), {})
        assert routes[10][0].pref_class == CLASS_CUSTOMER
        assert routes[10][0].path == (100,)

    def test_shorter_customer_route_wins(self):
        # 1 hears from 10 (via 100) and from 11 (via 12 via 100): shorter wins.
        graph = build_graph(
            [100, 10, 11, 12, 1],
            [(100, 10), (100, 12), (12, 11), (10, 1), (11, 1)],
        )
        routes = propagate(graph, single_unit_policy(100), {})
        assert routes[1][0].path == (10, 100)

    def test_tiebreak_lower_neighbor_asn(self):
        # Two equal-length customer routes into 1: via 10 and via 11.
        graph = build_graph(
            [100, 10, 11, 1], [(100, 10), (100, 11), (10, 1), (11, 1)]
        )
        routes = propagate(graph, single_unit_policy(100), {})
        assert routes[1][0].path == (10, 100)  # 10 < 11

    def test_loop_prevention(self):
        # Diamond with a peer shortcut must not loop paths.
        graph = build_graph([100, 10, 11], [(100, 10), (100, 11)], [(10, 11)])
        routes = propagate(graph, single_unit_policy(100), {})
        for table in routes.values():
            for route in table.values():
                stripped = route.path
                assert len(set(stripped)) == len(stripped)


class TestAnnouncementPolicy:
    def test_announce_to_subset(self):
        graph = build_graph([100, 10, 11], [(100, 10), (100, 11)])
        policy = OriginPolicy(100, 4)
        policy.new_unit([Prefix.parse("10.0.0.0/24")],
                        announce_to=frozenset([11]))
        routes = propagate(graph, policy, {})
        assert routes[11][0].path == (100,)
        # AS 10 hears nothing directly; it has no other path upward.
        assert 10 not in routes or routes[10][0].path != (100,)

    def test_prepending_lengthens_seed(self):
        graph = build_graph([100, 10], [(100, 10)])
        policy = OriginPolicy(100, 4)
        policy.new_unit([Prefix.parse("10.0.0.0/24")], prepend={10: 2})
        routes = propagate(graph, policy, {})
        assert routes[10][0].path == (100, 100, 100)
        assert routes[10][0].length == 3

    def test_prepending_redirects_selection(self):
        # 1 reaches 100 via 10 (prepended) or 11 (clean): clean wins.
        graph = build_graph(
            [100, 10, 11, 1], [(100, 10), (100, 11), (10, 1), (11, 1)]
        )
        policy = OriginPolicy(100, 4)
        policy.new_unit([Prefix.parse("10.0.0.0/24")], prepend={10: 2})
        routes = propagate(graph, policy, {})
        assert routes[1][0].path == (11, 100)

    def test_multiple_units_propagate_together(self):
        graph = build_graph([100, 10, 11], [(100, 10), (100, 11)])
        policy = OriginPolicy(100, 4)
        policy.new_unit([Prefix.parse("10.0.0.0/24")])
        policy.new_unit([Prefix.parse("10.0.1.0/24")],
                        announce_to=frozenset([11]))
        routes = propagate(graph, policy, {})
        assert routes[10][0].path == (100,)   # unit 0 announced everywhere
        assert 1 not in routes[10] or routes[10][1].path != (100,)
        assert routes[11][1].path == (100,)


class TestTagFiltering:
    def test_blocked_egress_forces_detour(self):
        # 100 -> 20; 20 -> {1, 2}; VP 30 -> {1, 2}.  Tag blocked on 20->1.
        graph = build_graph(
            [100, 20, 30, 1, 2],
            [(100, 20), (20, 1), (20, 2), (30, 1), (30, 2)],
            [(1, 2)],
        )
        tag = Community(20, 1)
        transit = TransitPolicy(20)
        transit.block(tag, frozenset([1]))
        policy = OriginPolicy(100, 4)
        policy.new_unit([Prefix.parse("10.0.0.0/24")])          # base
        policy.new_unit([Prefix.parse("10.0.1.0/24")], tag=tag)  # tagged
        routes = propagate(graph, policy, {20: transit})
        base = routes[30][0]
        tagged = routes[30][1]
        assert base.path == (1, 20, 100)     # tie-break: lower T1 first
        assert tagged.path == (2, 20, 100)   # forced through AS 2
        # Divergence is at position 3 from the origin: 100, 20, then 1 vs 2.

    def test_fully_blocked_unit_is_invisible_beyond(self):
        graph = build_graph([100, 20, 30, 1], [(100, 20), (20, 1), (30, 1)])
        tag = Community(20, 1)
        transit = TransitPolicy(20)
        transit.block(tag, frozenset([1]))
        policy = OriginPolicy(100, 4)
        policy.new_unit([Prefix.parse("10.0.1.0/24")], tag=tag)
        routes = propagate(graph, policy, {20: transit})
        assert 30 not in routes
        assert routes[20][0].path == (100,)  # the transit itself still has it

    def test_untagged_units_ignore_rules(self):
        graph = build_graph([100, 20, 1], [(100, 20), (20, 1)])
        transit = TransitPolicy(20)
        transit.block(Community(20, 9), frozenset([1]))
        policy = single_unit_policy(100)
        routes = propagate(graph, policy, {20: transit})
        assert routes[1][0].path == (20, 100)


class TestTargetsAndPruning:
    def test_targets_trim_result(self):
        graph = build_graph([100, 10, 11], [(100, 10), (100, 11)])
        routes = propagate(graph, single_unit_policy(100), {}, targets={10})
        assert set(routes) == {10}

    def test_cone_pruning_matches_unpruned_at_targets(self):
        # A larger random-ish fixed graph; the pruned result at targets
        # must equal the unpruned result restricted to targets.
        graph = build_graph(
            [1, 2, 10, 11, 12, 100, 101, 102, 103],
            [
                (10, 1), (10, 2), (11, 1), (12, 2),
                (100, 10), (101, 11), (102, 12), (103, 10), (103, 12),
            ],
            [(1, 2), (10, 11), (11, 12)],
        )
        policy = single_unit_policy(100)
        targets = {101, 102, 103}
        pruned = propagate(graph, policy, {}, targets=targets)
        full = propagate(graph, policy, {})
        for asn in targets:
            assert pruned.get(asn) == full.get(asn)


class TestEngine:
    def test_cache_hit_on_repeat(self):
        graph = build_graph([100, 10], [(100, 10)])
        policy = single_unit_policy(100)
        engine = PropagationEngine(graph, {})
        targets = frozenset([10])
        first = engine.routes(policy, targets)
        second = engine.routes(policy, targets)
        assert first is second
        assert engine.hits == 1 and engine.misses == 1

    def test_policy_version_invalidates(self):
        graph = build_graph([100, 10], [(100, 10)])
        policy = single_unit_policy(100)
        engine = PropagationEngine(graph, {})
        targets = frozenset([10])
        engine.routes(policy, targets)
        policy.new_unit([Prefix.parse("10.9.0.0/24")])
        engine.routes(policy, targets)
        assert engine.misses == 2

    def test_graph_version_invalidates(self):
        graph = build_graph([100, 10, 11], [(100, 10)])
        policy = single_unit_policy(100)
        engine = PropagationEngine(graph, {})
        targets = frozenset([10])
        engine.routes(policy, targets)
        graph.add_provider_link(100, 11)
        engine.routes(policy, targets)
        assert engine.misses == 2

    def test_determinism(self):
        graph = build_graph(
            [1, 2, 10, 11, 100, 101],
            [(10, 1), (11, 2), (100, 10), (101, 11)],
            [(1, 2), (10, 11)],
        )
        policy = single_unit_policy(100)
        assert propagate(graph, policy, {}) == propagate(graph, policy, {})
