"""Checkpoint/resume: a killed sweep restarts from the last quarter."""

import json

from repro.engine.checkpoint import CheckpointLog
from repro.engine.jobs import build_jobs, clear_worker_state
from repro.engine.metrics import EngineMetrics
from repro.engine.scheduler import ExecutionEngine
from repro.util.dates import utc_timestamp

from tests.engine.conftest import ENGINE_WORLD

QUARTERS = [
    (2004, 1, 2004.0),
    (2004, 4, 2004.25),
    (2004, 7, 2004.5),
    (2004, 10, 2004.75),
]


def sweep_jobs():
    return build_jobs(
        ENGINE_WORLD,
        utc_timestamp(2004, 1, 1),
        QUARTERS,
        with_stability=False,
    )


def test_full_restore_from_checkpoint(tmp_path):
    jobs = sweep_jobs()
    log = CheckpointLog(tmp_path / "sweep.jsonl")
    baseline = ExecutionEngine(jobs=1, checkpoint=log).run(jobs)

    clear_worker_state()
    metrics = EngineMetrics()
    resumed = ExecutionEngine(jobs=1, checkpoint=log, metrics=metrics).run(jobs)
    summary = metrics.summary()
    assert summary["checkpoint_hits"] == len(jobs)
    assert summary["computed"] == 0
    for a, b in zip(baseline, resumed):
        assert a.stats == b.stats
        assert a.formation_shares == b.formation_shares
        assert a.feed == b.feed


def test_partial_resume_continues_from_last_quarter(tmp_path):
    """Simulate a kill after two quarters: the rerun computes only the
    remaining two, and the merged results equal an uninterrupted run."""
    jobs = sweep_jobs()
    log = CheckpointLog(tmp_path / "sweep.jsonl")

    ExecutionEngine(jobs=1, checkpoint=log).run(jobs[:2])  # "killed" here

    clear_worker_state()
    metrics = EngineMetrics()
    resumed = ExecutionEngine(jobs=1, checkpoint=log, metrics=metrics).run(jobs)
    summary = metrics.summary()
    assert summary["checkpoint_hits"] == 2
    assert summary["computed"] == 2

    clear_worker_state()
    uninterrupted = ExecutionEngine(jobs=1).run(jobs)
    assert [r.label for r in resumed] == [r.label for r in uninterrupted]
    for a, b in zip(resumed, uninterrupted):
        assert a.stats == b.stats
        assert a.formation_shares == b.formation_shares
        assert a.feed == b.feed


def test_truncated_final_line_dropped(tmp_path):
    """A torn write at the kill instant loses only that one line."""
    jobs = sweep_jobs()[:2]
    log = CheckpointLog(tmp_path / "sweep.jsonl")
    ExecutionEngine(jobs=1, checkpoint=log).run(jobs)

    with open(log.path, "a", encoding="utf-8") as handle:
        handle.write('{"key": "deadbeef", "result": {"label"')  # torn

    restored = log.load()
    assert len(restored) == 2
    assert "deadbeef" not in restored


def test_unparseable_middle_line_skipped(tmp_path):
    jobs = sweep_jobs()[:2]
    log = CheckpointLog(tmp_path / "sweep.jsonl")
    ExecutionEngine(jobs=1, checkpoint=log).run([jobs[0]])
    with open(log.path, "a", encoding="utf-8") as handle:
        handle.write("not json at all\n")
    clear_worker_state()
    ExecutionEngine(jobs=1, checkpoint=log).run(jobs)
    assert len(log.load()) == 2


def test_cache_hits_mirrored_into_checkpoint(tmp_path):
    """A cache hit still lands in the log, so resume survives a cache
    wipe between runs."""
    from repro.engine.cache import ResultCache

    jobs = sweep_jobs()[:2]
    cache = ResultCache(tmp_path / "cache")
    ExecutionEngine(jobs=1, cache=cache).run(jobs)

    clear_worker_state()
    log = CheckpointLog(tmp_path / "sweep.jsonl")
    ExecutionEngine(jobs=1, cache=cache, checkpoint=log).run(jobs)
    assert len(log.load()) == 2


def test_clear_removes_log(tmp_path):
    log = CheckpointLog(tmp_path / "sweep.jsonl")
    ExecutionEngine(jobs=1, checkpoint=log).run(sweep_jobs()[:1])
    assert log.path.exists()
    log.clear()
    assert not log.path.exists()
    assert log.load() == {}
    log.clear()  # idempotent


def test_log_lines_carry_labels(tmp_path):
    """Each line names its quarter — the log doubles as a progress file."""
    log = CheckpointLog(tmp_path / "sweep.jsonl")
    ExecutionEngine(jobs=1, checkpoint=log).run(sweep_jobs()[:2])
    labels = [
        json.loads(line)["label"]
        for line in log.path.read_text(encoding="utf-8").splitlines()
    ]
    assert labels == ["2004-01", "2004-04"]
