"""EngineMetrics aggregation math.

Regression focus: cache and checkpoint hits arrive as zero-second
``job_done`` events; they must not count as worker time, or the
busy-seconds, per-job mean and per-worker averages all deflate toward
zero on warm-cache sweeps.
"""

import pytest

from repro.engine.metrics import (
    SOURCE_CACHE,
    SOURCE_CHECKPOINT,
    SOURCE_COMPUTED,
    EngineMetrics,
)


def feed(metrics, done_events, workers=2):
    metrics("sweep_start", {"jobs": len(done_events), "workers": workers})
    for index, payload in enumerate(done_events):
        metrics("job_done", {"index": index, "label": f"j{index}",
                             "key": f"k{index}", **payload})
    metrics("sweep_done", {"seconds": 0.0})


def computed(seconds, worker, records=10):
    return {"source": SOURCE_COMPUTED, "seconds": seconds,
            "worker": worker, "records": records}


class TestSummaryExcludesNonComputedJobs:
    """The regression: hits are answered at submission, not by workers."""

    @pytest.fixture
    def mixed(self):
        metrics = EngineMetrics()
        feed(metrics, [
            computed(2.0, worker=111),
            computed(4.0, worker=222),
            {"source": SOURCE_CACHE, "seconds": 0.0, "records": 10},
            {"source": SOURCE_CHECKPOINT, "seconds": 0.0, "records": 10},
        ])
        metrics.wall_seconds = 3.0  # pin wall time for determinism
        return metrics

    def test_busy_seconds_counts_computed_only(self, mixed):
        assert mixed.summary()["busy_seconds"] == pytest.approx(6.0)

    def test_mean_job_seconds_divides_by_computed_count(self, mixed):
        # 6.0s over 2 computed jobs — NOT over 4 recorded jobs (1.5).
        assert mixed.summary()["mean_job_seconds"] == pytest.approx(3.0)

    def test_utilization_uses_computed_busy_time(self, mixed):
        # 6.0 busy / (3.0 wall * 2 workers) = 1.0
        assert mixed.summary()["worker_utilization"] == pytest.approx(1.0)

    def test_hits_still_counted_as_jobs(self, mixed):
        summary = mixed.summary()
        assert summary["jobs"] == 4
        assert summary["computed"] == 2
        assert summary["cache_hits"] == 1
        assert summary["checkpoint_hits"] == 1
        assert summary["hit_rate"] == pytest.approx(0.5)

    def test_per_worker_breakdown(self, mixed):
        per_worker = mixed.summary()["per_worker"]
        assert set(per_worker) == {111, 222}
        assert per_worker[111]["jobs"] == 1
        assert per_worker[111]["seconds"] == pytest.approx(2.0)
        assert per_worker[222]["mean_seconds"] == pytest.approx(4.0)

    def test_hits_do_not_dilute_existing_averages(self):
        """Adding hit events must leave every busy-time stat unchanged."""
        baseline = EngineMetrics()
        feed(baseline, [computed(2.0, 111), computed(4.0, 222)])
        baseline.wall_seconds = 3.0

        warmed = EngineMetrics()
        feed(warmed, [
            computed(2.0, 111),
            computed(4.0, 222),
            *[{"source": SOURCE_CACHE, "seconds": 0.0, "records": 1}] * 50,
        ])
        warmed.wall_seconds = 3.0

        a, b = baseline.summary(), warmed.summary()
        for key in ("busy_seconds", "mean_job_seconds",
                    "worker_utilization", "per_worker"):
            assert a[key] == b[key], key


class TestAllHitSweep:
    def test_fully_cached_sweep_reports_zero_busy(self):
        metrics = EngineMetrics()
        feed(metrics, [
            {"source": SOURCE_CACHE, "seconds": 0.0, "records": 5},
            {"source": SOURCE_CHECKPOINT, "seconds": 0.0, "records": 5},
        ])
        metrics.wall_seconds = 1.0
        summary = metrics.summary()
        assert summary["busy_seconds"] == 0.0
        assert summary["mean_job_seconds"] == 0.0
        assert summary["worker_utilization"] == 0.0
        assert summary["per_worker"] == {}
        assert summary["hit_rate"] == 1.0
        assert "worker(s)" in metrics.render()


class TestWorkerSummary:
    def test_skips_jobs_without_worker_id(self):
        metrics = EngineMetrics()
        feed(metrics, [
            computed(1.0, worker=None),
            computed(3.0, worker=7),
        ])
        assert set(metrics.worker_summary()) == {7}

    def test_aggregates_per_worker(self):
        metrics = EngineMetrics()
        feed(metrics, [
            computed(1.0, worker=7),
            computed(3.0, worker=7),
        ])
        entry = metrics.worker_summary()[7]
        assert entry["jobs"] == 2
        assert entry["seconds"] == pytest.approx(4.0)
        assert entry["mean_seconds"] == pytest.approx(2.0)
