"""Shared fixtures for the execution-engine tests."""

import pytest

from repro.engine.jobs import clear_worker_state
from repro.topology.evolution import WorldParams

#: Small world: fast enough for multi-sweep tests, structurally complete.
ENGINE_WORLD = WorldParams(
    seed=31,
    as_scale=1 / 400.0,
    prefix_scale=1 / 400.0,
    peer_scale=0.03,
    collector_scale=0.3,
    min_fullfeed_peers=6,
)


@pytest.fixture(autouse=True)
def fresh_worker_state():
    """Each test starts without a cached in-process world lineage."""
    clear_worker_state()
    yield
    clear_worker_state()
