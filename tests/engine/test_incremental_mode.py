"""Incremental job mode: value-identical results, distinct cache keys.

The tentpole guarantee is that ``incremental=True`` changes *how* a
quarter's atoms are maintained (AtomIndex dirty-set repair instead of
four from-scratch computations) but never *what* comes out: every
QuarterResult field must be exactly equal, and the two modes must never
share cache entries.
"""

from dataclasses import replace

from repro.engine.cache import job_digest
from repro.engine.jobs import (
    build_jobs,
    clear_worker_state,
    execute_snapshot_job,
    result_from_payload,
    result_to_payload,
)
from repro.engine.metrics import EngineMetrics
from repro.engine.scheduler import ExecutionEngine
from repro.util.dates import utc_timestamp

from tests.engine.conftest import ENGINE_WORLD

QUARTERS = [(2004, 1, 2004.0), (2004, 4, 2004.25), (2004, 7, 2004.5)]


def sweep_jobs(incremental, with_stability=True):
    return build_jobs(
        ENGINE_WORLD,
        utc_timestamp(2004, 1, 1),
        QUARTERS,
        with_stability=with_stability,
        incremental=incremental,
    )


class TestValueIdentity:
    def test_results_identical_to_from_scratch(self):
        baseline = []
        for job in sweep_jobs(incremental=False):
            baseline.append(execute_snapshot_job(job))
        clear_worker_state()
        incremental = []
        for job in sweep_jobs(incremental=True):
            incremental.append(execute_snapshot_job(job))

        assert len(incremental) == len(baseline)
        for a, b in zip(baseline, incremental):
            assert a.label == b.label
            assert a.stats == b.stats
            assert a.formation_shares == b.formation_shares
            assert a.formation_shares_no_single == b.formation_shares_no_single
            assert a.stability == b.stability
            assert a.feed == b.feed
            assert a.report == b.report
            assert a.record_count == b.record_count

    def test_incremental_stats_populated(self):
        results = [execute_snapshot_job(job) for job in sweep_jobs(True)]
        for result in results:
            stats = result.incremental
            assert stats["steps"] == 4
            assert stats["rebuilds"] >= 1
            assert stats["key_recomputations"] > 0
        # Later instants of a quarter ride the index: at least some
        # steps across the sweep must have been true incremental syncs.
        assert sum(r.incremental["incremental_steps"] for r in results) > 0

    def test_from_scratch_results_carry_no_stats(self):
        result = execute_snapshot_job(sweep_jobs(False)[0])
        assert result.incremental == {}


class TestCacheKey:
    def test_modes_never_share_cache_entries(self):
        plain = sweep_jobs(False)[0]
        assert job_digest(plain) != job_digest(replace(plain, incremental=True))

    def test_payload_round_trip_keeps_stats(self):
        result = execute_snapshot_job(sweep_jobs(True, with_stability=False)[0])
        restored = result_from_payload(result_to_payload(result))
        assert restored.incremental == result.incremental

    def test_old_payloads_without_stats_still_load(self):
        result = execute_snapshot_job(sweep_jobs(False, with_stability=False)[0])
        payload = result_to_payload(result)
        del payload["incremental"]
        assert result_from_payload(payload).incremental == {}


class TestMetricsRollup:
    def test_engine_metrics_aggregate_incremental_counters(self):
        metrics = EngineMetrics()
        ExecutionEngine(jobs=1, metrics=metrics).run(sweep_jobs(True))
        rollup = metrics.incremental_summary()
        assert rollup["jobs"] == len(QUARTERS)
        assert rollup["steps"] == 4 * len(QUARTERS)
        assert rollup["incremental_steps"] + rollup["rebuilds"] == rollup["steps"]
        assert rollup["key_recomputations"] > 0
        assert "incremental:" in metrics.render()

    def test_rollup_empty_without_incremental_jobs(self):
        metrics = EngineMetrics()
        ExecutionEngine(jobs=1, metrics=metrics).run(sweep_jobs(False))
        assert metrics.incremental_summary() == {}
        assert "incremental:" not in metrics.render()
