"""Zero-copy columnar result plane: codec, transports, cache sidecar.

Covers the exchange acceptance criteria: a decoded columnar result is
value-identical to the JSON path (``result_to_payload`` bytes equal),
corruption anywhere in a segment raises instead of yielding a wrong
result, both transports (shared memory and spool files) round-trip,
and a parallel columnar sweep equals the serial JSON baseline exactly.
"""

import json
import os

import pytest

from repro.core.statistics import GeneralStats
from repro.engine.cache import ResultCache, job_digest
from repro.engine.exchange import (
    ExchangeError,
    ResultPlane,
    decode_cache_entry,
    decode_result_segment,
    encode_cache_entry,
    encode_result,
    encode_result_segment,
    publish_result,
)
from repro.engine.jobs import (
    build_jobs,
    clear_worker_state,
    execute_snapshot_job,
    result_to_payload,
)
from repro.engine.metrics import EngineMetrics
from repro.engine.scheduler import ExecutionEngine
from repro.store.format import KIND_RESULT, StoreError, frame_digested_segment
from repro.util.dates import utc_timestamp

from tests.engine.conftest import ENGINE_WORLD


def synthetic_result():
    """A hand-built result exercising every codec branch.

    None values in ``update_pr_full``, negative and large ints, nested
    containers, non-ASCII text, int dict keys, bools — everything the
    tagged tail must round-trip type-exactly.
    """
    from repro.engine.jobs import QuarterResult

    return QuarterResult(
        label="2004-Q1 — café",
        year=2004.25,
        month=4,
        family=2,
        stats=GeneralStats(
            n_prefixes=12345,
            n_ases=678,
            n_ases_one_atom=90,
            n_atoms=4321,
            n_single_prefix_atoms=1111,
            mean_atom_size=2.857142857,
            p99_atom_size=17,
            max_atom_size=404,
        ),
        formation_shares={1: 0.5, 2: 0.25, 3: 0.25},
        formation_shares_no_single={2: 0.5, 3: 0.5},
        stability={"8h": (0.75, 12, 16), "2d": (0.5, 8, 16)},
        feed={"fullfeed_peers": 9, "partial_peers": 2},
        report={
            "removed_peers": {"65001": "default-route"},
            "prefixes_kept": 1000,
            "prefixes_total": 1024,
            "nested": [1, -7, None, True, False, "x", {"k": 2.5}],
            "big": 2**40,
            "neg": -(2**40),
        },
        update_record_count=55,
        update_pr_full={0: 0.1, 4: None, 8: 0.9},
        record_count=99999,
        incremental={"steps": 4, "dirty_sizes": [3, 0, 7]},
    )


@pytest.fixture(scope="module")
def computed_result():
    """One real computed result (cheap world, no stability suite)."""
    jobs = build_jobs(
        ENGINE_WORLD,
        utc_timestamp(2004, 1, 1),
        [(2004, 1, 2004.0)],
        with_stability=False,
    )
    clear_worker_state()
    return execute_snapshot_job(jobs[0])


def payload_bytes(result) -> bytes:
    """The JSON-path canonical form the parity gate compares."""
    return json.dumps(result_to_payload(result)).encode("utf-8")


class TestResultCodec:
    def test_synthetic_round_trip_is_value_identical(self):
        result = synthetic_result()
        decoded = decode_result_segment(encode_result_segment(result))
        assert payload_bytes(decoded) == payload_bytes(result)
        # Type preservation, not just JSON equality:
        assert decoded.formation_shares == result.formation_shares
        assert decoded.stability == result.stability
        assert decoded.update_pr_full == result.update_pr_full
        assert decoded.update_pr_full[4] is None
        assert decoded.stats == result.stats

    def test_computed_round_trip(self, computed_result):
        decoded = decode_result_segment(encode_result_segment(computed_result))
        assert payload_bytes(decoded) == payload_bytes(computed_result)

    def test_encoding_is_deterministic(self, computed_result):
        assert encode_result_segment(computed_result) == encode_result_segment(
            computed_result
        )

    def test_digest_flip_raises(self):
        image = bytearray(encode_result_segment(synthetic_result()))
        image[-1] ^= 0xFF
        with pytest.raises(StoreError):
            decode_result_segment(bytes(image))

    def test_truncation_raises(self):
        image = encode_result_segment(synthetic_result())
        with pytest.raises(StoreError):
            decode_result_segment(image[:-4])

    def test_wrong_kind_raises(self):
        body = encode_result(synthetic_result())
        image = frame_digested_segment(KIND_RESULT + 40, body)
        with pytest.raises(StoreError):
            decode_result_segment(image)

    def test_trailing_bytes_raise(self):
        body = encode_result(synthetic_result()) + b"\x00"
        with pytest.raises(StoreError):
            decode_result_segment(frame_digested_segment(KIND_RESULT, body))

    def test_unencodable_value_raises(self):
        result = synthetic_result()
        result.report["bad"] = object()
        with pytest.raises(ExchangeError):
            encode_result_segment(result)


class TestCacheEntryCodec:
    def test_round_trip(self):
        result = synthetic_result()
        entry = encode_cache_entry("abc123", result)
        decoded = decode_cache_entry(entry, "abc123")
        assert payload_bytes(decoded) == payload_bytes(result)

    def test_key_mismatch_raises(self):
        entry = encode_cache_entry("abc123", synthetic_result())
        with pytest.raises(ExchangeError):
            decode_cache_entry(entry, "def456")

    def test_reuses_provided_segment(self):
        result = synthetic_result()
        segment = encode_result_segment(result)
        entry = encode_cache_entry("k", result, segment)
        assert entry.endswith(segment)
        assert payload_bytes(decode_cache_entry(entry, "k")) == payload_bytes(
            result
        )


class TestTransports:
    @pytest.mark.parametrize("mode", ["shm", "file"])
    def test_publish_claim_round_trip(self, mode, tmp_path):
        kwargs = {"directory": tmp_path} if mode == "file" else {}
        result = synthetic_result()
        image = encode_result_segment(result)
        with ResultPlane(mode=mode, **kwargs) as plane:
            ref = publish_result(plane.spec(), image)
            assert ref["mode"] == mode
            assert ref["bytes"] == len(image)
            with plane.claim(ref) as view:
                decoded = decode_result_segment(view)
        assert payload_bytes(decoded) == payload_bytes(result)

    def test_shm_claim_retires_the_block(self):
        from multiprocessing import shared_memory

        plane = ResultPlane(mode="shm")
        ref = publish_result(plane.spec(), encode_result_segment(synthetic_result()))
        with plane.claim(ref) as view:
            decode_result_segment(view)
        with pytest.raises(FileNotFoundError):
            shared_memory.SharedMemory(name=ref["name"])
        plane.close()

    def test_file_claim_deletes_the_spool(self, tmp_path):
        with ResultPlane(mode="file", directory=tmp_path) as plane:
            ref = publish_result(
                plane.spec(), encode_result_segment(synthetic_result())
            )
            assert os.path.exists(ref["path"])
            with plane.claim(ref) as view:
                decode_result_segment(view)
            assert not os.path.exists(ref["path"])

    def test_vanished_refs_raise(self, tmp_path):
        with ResultPlane(mode="file", directory=tmp_path) as plane:
            with pytest.raises(ExchangeError):
                with plane.claim(
                    {"mode": "file", "path": str(tmp_path / "gone.seg"), "bytes": 8}
                ):
                    pass  # pragma: no cover - claim raises before entry
            with pytest.raises(ExchangeError):
                with plane.claim({"mode": "shm", "name": "repro-xch-0-missing",
                                  "bytes": 8}):
                    pass  # pragma: no cover
            with pytest.raises(ExchangeError):
                with plane.claim({"mode": "carrier-pigeon"}):
                    pass  # pragma: no cover

    def test_owned_spool_dir_is_removed_on_close(self):
        plane = ResultPlane(mode="file")
        spool = plane.directory
        assert spool is not None and spool.is_dir()
        plane.close()
        assert not spool.exists()

    def test_unclaimed_shm_of_dead_owner_is_swept(self):
        import uuid
        from multiprocessing import shared_memory

        from repro.engine.exchange import SHM_PREFIX, _SHM_MOUNT

        if not _SHM_MOUNT.is_dir():
            pytest.skip("no /dev/shm on this platform")
        # Forge a block whose embedded owner pid is certainly dead.
        dead = 2**22 - 1
        name = f"{SHM_PREFIX}-{dead}-{uuid.uuid4().hex[:16]}"
        block = shared_memory.SharedMemory(name=name, create=True, size=8)
        from repro.engine.exchange import _untrack_shm

        _untrack_shm(block)
        block.close()
        assert (_SHM_MOUNT / name).exists()
        ResultPlane(mode="shm").close()
        assert not (_SHM_MOUNT / name).exists()


def run_columnar_sweep(jobs, batch=1, cache=None, metrics=None,
                       exchange="columnar", exchange_dir=None):
    sweep_jobs = build_jobs(
        ENGINE_WORLD,
        utc_timestamp(2004, 1, 1),
        [(2004, 1, 2004.0), (2005, 1, 2005.0), (2006, 1, 2006.0)],
        with_stability=False,
    )
    clear_worker_state()
    engine = ExecutionEngine(
        jobs=jobs, batch=batch, cache=cache, metrics=metrics,
        exchange=exchange, exchange_dir=exchange_dir,
    )
    return engine.run(sweep_jobs)


class TestParallelColumnarParity:
    @pytest.fixture(scope="class")
    def serial_json(self):
        return run_columnar_sweep(jobs=1, exchange="json")

    def test_jobs4_columnar_identical(self, serial_json):
        parallel = run_columnar_sweep(jobs=4)
        assert [payload_bytes(r) for r in parallel] == [
            payload_bytes(r) for r in serial_json
        ]

    def test_batch2_columnar_identical(self, serial_json):
        parallel = run_columnar_sweep(jobs=2, batch=2)
        assert [payload_bytes(r) for r in parallel] == [
            payload_bytes(r) for r in serial_json
        ]

    def test_file_spool_columnar_identical(self, serial_json, tmp_path):
        parallel = run_columnar_sweep(jobs=2, exchange_dir=tmp_path)
        assert [payload_bytes(r) for r in parallel] == [
            payload_bytes(r) for r in serial_json
        ]
        assert not list(tmp_path.glob("*.seg"))  # all claims retired

    def test_metrics_report_columnar_codec(self):
        metrics = EngineMetrics()
        run_columnar_sweep(jobs=2, metrics=metrics)
        summary = metrics.summary()["exchange"]
        assert summary["columnar_jobs"] == 3
        assert summary["bytes_claimed"] > 0
        assert "columnar job(s)" in metrics.render()

    def test_serial_sweep_has_no_exchange_rollup(self, serial_json):
        metrics = EngineMetrics()
        run_columnar_sweep(jobs=1, exchange="json", metrics=metrics)
        assert metrics.summary()["exchange"] == {}

    def test_engine_rejects_unknown_exchange(self):
        with pytest.raises(ValueError):
            ExecutionEngine(exchange="telepathy")


class TestBinarySidecarCache:
    def test_put_writes_sidecar_and_get_prefers_it(self, tmp_path,
                                                   computed_result):
        cache = ResultCache(tmp_path, binary=True)
        key = "ab" + "0" * 62
        cache.put(key, computed_result)
        assert cache._binary_path(key).is_file()
        # Corrupt the JSON entry: the sidecar must still answer.
        cache._path(key).write_text("{broken", encoding="utf-8")
        hit = cache.get(key)
        assert hit is not None
        assert payload_bytes(hit) == payload_bytes(computed_result)

    def test_corrupt_sidecar_falls_back_to_json(self, tmp_path,
                                                computed_result):
        cache = ResultCache(tmp_path, binary=True)
        key = "cd" + "0" * 62
        cache.put(key, computed_result)
        sidecar = cache._binary_path(key)
        damaged = bytearray(sidecar.read_bytes())
        damaged[-1] ^= 0xFF
        sidecar.write_bytes(bytes(damaged))
        hit = cache.get(key)
        assert hit is not None
        assert payload_bytes(hit) == payload_bytes(computed_result)
        assert not sidecar.exists()  # the bad sidecar was dropped

    def test_plain_cache_reads_leftover_sidecars(self, tmp_path,
                                                 computed_result):
        binary = ResultCache(tmp_path, binary=True)
        key = "ef" + "0" * 62
        binary.put(key, computed_result)
        plain = ResultCache(tmp_path)
        assert not plain.binary
        hit = plain.get(key)
        assert hit is not None
        assert payload_bytes(hit) == payload_bytes(computed_result)

    def test_plain_cache_writes_no_sidecar(self, tmp_path, computed_result):
        cache = ResultCache(tmp_path)
        key = "0f" + "0" * 62
        cache.put(key, computed_result)
        assert not cache._binary_path(key).exists()

    def test_parallel_columnar_sweep_fills_binary_cache(self, tmp_path):
        cache = ResultCache(tmp_path, binary=True)
        first = run_columnar_sweep(jobs=2, cache=cache)
        assert list(tmp_path.glob("*/*.seg"))
        metrics = EngineMetrics()
        second = run_columnar_sweep(jobs=1, cache=cache, metrics=metrics,
                                    exchange="json")
        assert metrics.summary()["hit_rate"] == 1.0
        assert [payload_bytes(r) for r in first] == [
            payload_bytes(r) for r in second
        ]

    def test_sidecar_key_binding(self, tmp_path, computed_result):
        """A sidecar renamed onto another key is rejected, not served."""
        cache = ResultCache(tmp_path, binary=True)
        key = "12" + "0" * 62
        other = "12" + "f" * 62
        cache.put(key, computed_result)
        cache._binary_path(other).parent.mkdir(parents=True, exist_ok=True)
        cache._binary_path(other).write_bytes(
            cache._binary_path(key).read_bytes()
        )
        assert cache.get(other) is None  # no JSON entry either
        assert not cache._binary_path(other).exists()

    def test_job_digest_unchanged_by_exchange_fields(self):
        """Exchange/checkpoint wiring must not invalidate existing caches."""
        base = build_jobs(
            ENGINE_WORLD,
            utc_timestamp(2004, 1, 1),
            [(2004, 1, 2004.0)],
            with_stability=False,
        )[0]
        from dataclasses import replace

        stamped = replace(base, world_checkpoint_dir="/tmp/x",
                          world_checkpoint_stride=2)
        assert job_digest(stamped) == job_digest(base)
