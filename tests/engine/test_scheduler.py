"""Scheduler behavior: parallel determinism, ordering, metrics, hooks.

Includes the headline acceptance check: a 2004-2012 trend sweep with
``jobs=4`` is value-identical to the serial run, and a second
invocation of the same sweep is answered almost entirely from cache.
"""

import pytest

from repro.analysis.longitudinal import (
    LongitudinalStudy,
    formation_trend_series,
    fullfeed_trend_series,
    stability_trend_series,
)
from repro.engine.cache import ResultCache
from repro.engine.jobs import build_jobs, clear_worker_state
from repro.engine.metrics import EngineMetrics, progress_hook
from repro.engine.scheduler import ExecutionEngine
from repro.simulation.scenario import SimulatedInternet
from repro.util.dates import utc_timestamp

from tests.engine.conftest import ENGINE_WORLD

SWEEP_YEARS = list(range(2004, 2013))


def run_sweep(jobs: int, cache=None, metrics=None, with_stability=True,
              batch=1):
    """One 2004-2012 yearly trend sweep through the engine."""
    clear_worker_state()
    engine = ExecutionEngine(jobs=jobs, cache=cache, metrics=metrics,
                             batch=batch)
    study = LongitudinalStudy(
        SimulatedInternet(ENGINE_WORLD, start="2004-01-01"), engine=engine
    )
    return study.run_years(SWEEP_YEARS, with_stability=with_stability)


def all_series(results):
    """Every trend Series the paper's figures draw from these results."""
    series = list(formation_trend_series(results))
    series.extend(stability_trend_series(results))
    series.extend(fullfeed_trend_series(results))
    return series


@pytest.fixture(scope="module")
def serial_results():
    return run_sweep(jobs=1)


class TestParallelDeterminism:
    def test_jobs4_series_identical_to_serial(self, serial_results):
        """Acceptance: --jobs 4 Series values exactly equal serial."""
        parallel = run_sweep(jobs=4)
        for line_s, line_p in zip(all_series(serial_results), all_series(parallel)):
            assert line_s.name == line_p.name
            assert line_s.points == line_p.points  # exact, not approx

    def test_result_rows_identical(self, serial_results):
        parallel = run_sweep(jobs=2)
        assert len(parallel) == len(serial_results)
        for a, b in zip(serial_results, parallel):
            assert a.year == b.year
            assert a.stats == b.stats
            assert a.formation_shares == b.formation_shares
            assert a.formation_shares_no_single == b.formation_shares_no_single
            assert a.stability == b.stability
            assert a.feed == b.feed


class TestCachedSweep:
    def test_second_invocation_hits_cache(self, tmp_path, serial_results):
        """Acceptance: repeat sweep completes with >= 90% cache hits,
        verified through the metrics hook, with identical values."""
        cache = ResultCache(tmp_path)
        first = run_sweep(jobs=1, cache=cache)
        metrics = EngineMetrics()
        second = run_sweep(jobs=1, cache=cache, metrics=metrics)

        summary = metrics.summary()
        assert summary["hit_rate"] >= 0.9
        assert summary["cache_hits"] == len(SWEEP_YEARS)
        assert summary["computed"] == 0
        for line_a, line_b in zip(all_series(first), all_series(second)):
            assert line_a.points == line_b.points
        # The cached sweep must also equal the never-cached baseline.
        for line_a, line_b in zip(all_series(serial_results), all_series(second)):
            assert line_a.points == line_b.points

    def test_parallel_reads_and_fills_same_cache(self, tmp_path):
        cache = ResultCache(tmp_path)
        run_sweep(jobs=2, cache=cache, with_stability=False)
        metrics = EngineMetrics()
        run_sweep(jobs=2, cache=cache, metrics=metrics, with_stability=False)
        assert metrics.summary()["hit_rate"] == 1.0


class TestOrderingAndEvents:
    def test_results_in_submission_order(self):
        jobs = build_jobs(
            ENGINE_WORLD,
            utc_timestamp(2004, 1, 1),
            [(2004, 1, 2004.0), (2004, 4, 2004.25), (2004, 7, 2004.5)],
            with_stability=False,
        )
        clear_worker_state()
        results = ExecutionEngine(jobs=2).run(jobs)
        assert [r.label for r in results] == ["2004-01", "2004-04", "2004-07"]
        assert [r.year for r in results] == [2004.0, 2004.25, 2004.5]

    def test_event_stream_shape(self):
        events = []
        jobs = build_jobs(
            ENGINE_WORLD,
            utc_timestamp(2004, 1, 1),
            [(2004, 1, 2004.0), (2004, 4, 2004.25)],
            with_stability=False,
        )
        clear_worker_state()
        engine = ExecutionEngine(jobs=1, hooks=(lambda e, p: events.append((e, p)),))
        engine.run(jobs)
        names = [name for name, _ in events]
        assert names[0] == "sweep_start" and names[-1] == "sweep_done"
        assert names.count("job_start") == 2 and names.count("job_done") == 2
        done = [p for name, p in events if name == "job_done"]
        assert all(p["source"] == "computed" for p in done)
        assert all(p["records"] > 0 for p in done)
        assert all(p["seconds"] > 0 for p in done)

    def test_progress_hook_narrates(self, capsys):
        import sys

        jobs = build_jobs(
            ENGINE_WORLD,
            utc_timestamp(2004, 1, 1),
            [(2004, 1, 2004.0)],
            with_stability=False,
        )
        clear_worker_state()
        ExecutionEngine(jobs=1, hooks=(progress_hook(sys.stderr),)).run(jobs)
        err = capsys.readouterr().err
        assert "[engine] 1 job(s) on 1 worker(s)" in err
        assert "2004-01: computed" in err
        assert "sweep done" in err


class TestMetricsSummary:
    def test_summary_fields(self):
        metrics = EngineMetrics()
        jobs = build_jobs(
            ENGINE_WORLD,
            utc_timestamp(2004, 1, 1),
            [(2004, 1, 2004.0), (2004, 4, 2004.25)],
            with_stability=False,
        )
        clear_worker_state()
        ExecutionEngine(jobs=1, metrics=metrics).run(jobs)
        summary = metrics.summary()
        assert summary["jobs"] == 2
        assert summary["computed"] == 2
        assert summary["records"] > 0
        assert summary["busy_seconds"] > 0
        assert summary["wall_seconds"] > 0
        assert 0 < summary["worker_utilization"] <= 1
        assert "worker(s)" in metrics.render()

    def test_engine_rejects_zero_workers(self):
        with pytest.raises(ValueError):
            ExecutionEngine(jobs=0)
