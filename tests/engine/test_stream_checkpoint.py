"""Tests for the live pipeline's atomic state checkpoint (StreamCheckpoint)."""

import json

import pytest

from repro.bgp.attributes import PathAttributes
from repro.bgp.messages import ElementType, RouteElement, RouteRecord
from repro.engine.checkpoint import (
    STATE_NAME,
    STREAM_CHECKPOINT_VERSION,
    StreamCheckpoint,
    StreamCheckpointError,
)
from repro.net.aspath import ASPath
from repro.net.prefix import Prefix


def boundary_record(collector="rrc00", peer_asn=1, peer_address="10.9.1.1",
                    timestamp=900):
    elements = [
        RouteElement(
            ElementType.RIB, Prefix.parse("10.0.1.0/24"),
            PathAttributes(ASPath.parse("1 5 9")),
        ),
        RouteElement(
            ElementType.RIB, Prefix.parse("10.0.2.0/24"),
            PathAttributes(ASPath.parse("1 6 8")),
        ),
    ]
    return RouteRecord(
        "rib", "ris", collector, peer_asn, peer_address, timestamp, elements
    )


CONFIG = {"window_seconds": 900, "family": None}


def test_load_without_checkpoint_returns_none(tmp_path):
    assert StreamCheckpoint(tmp_path / "none").load() is None


def test_save_load_round_trip(tmp_path):
    checkpoint = StreamCheckpoint(tmp_path)
    records = [boundary_record()]
    meta = {"records_consumed": 42, "vantage_points": [["rrc00", 1, "10.9.1.1"]]}
    checkpoint.save(3, 3600, records, CONFIG, counters={"live.windows": 3},
                    meta=meta)

    state, restored = checkpoint.load(config=CONFIG)
    assert state["window_index"] == 3
    assert state["window_end"] == 3600
    assert state["counters"] == {"live.windows": 3}
    assert state["meta"] == meta
    assert len(restored) == 1
    assert restored[0].peer_id == records[0].peer_id
    assert restored[0].elements == records[0].elements


def test_new_save_replaces_previous_boundary(tmp_path):
    checkpoint = StreamCheckpoint(tmp_path)
    checkpoint.save(1, 900, [boundary_record()], CONFIG)
    checkpoint.save(2, 1800, [boundary_record(timestamp=1800)], CONFIG)

    state, _ = checkpoint.load()
    assert state["window_index"] == 2
    # the stale window-1 RIB file is swept away
    ribs = sorted(p.name for p in tmp_path.glob("rib-*.jsonl.gz"))
    assert ribs == ["rib-00000002.jsonl.gz"]


def test_config_mismatch_refuses_resume(tmp_path):
    checkpoint = StreamCheckpoint(tmp_path)
    checkpoint.save(1, 900, [boundary_record()], CONFIG)
    with pytest.raises(StreamCheckpointError, match="different live"):
        checkpoint.load(config={**CONFIG, "window_seconds": 60})


def test_version_mismatch_is_an_error(tmp_path):
    checkpoint = StreamCheckpoint(tmp_path)
    checkpoint.save(1, 900, [boundary_record()], CONFIG)
    state_path = tmp_path / STATE_NAME
    state = json.loads(state_path.read_text())
    state["version"] = STREAM_CHECKPOINT_VERSION + 1
    state_path.write_text(json.dumps(state))
    with pytest.raises(StreamCheckpointError, match="version"):
        checkpoint.load()


def test_corrupt_state_file_is_an_error(tmp_path):
    checkpoint = StreamCheckpoint(tmp_path)
    checkpoint.save(1, 900, [boundary_record()], CONFIG)
    (tmp_path / STATE_NAME).write_text("{not json", encoding="utf-8")
    with pytest.raises(StreamCheckpointError, match="corrupt"):
        checkpoint.load()


def test_missing_rib_file_is_an_error(tmp_path):
    checkpoint = StreamCheckpoint(tmp_path)
    checkpoint.save(1, 900, [boundary_record()], CONFIG)
    (tmp_path / "rib-00000001.jsonl.gz").unlink()
    with pytest.raises(StreamCheckpointError, match="cannot read"):
        checkpoint.load()


def test_truncated_rib_file_is_an_error(tmp_path):
    """A torn gzip write must fail loudly, never resume half a table."""
    checkpoint = StreamCheckpoint(tmp_path)
    checkpoint.save(1, 900, [boundary_record()], CONFIG)
    rib = tmp_path / "rib-00000001.jsonl.gz"
    rib.write_bytes(rib.read_bytes()[:-7])
    with pytest.raises(StreamCheckpointError, match="cannot read"):
        checkpoint.load()


def test_empty_peer_record_survives_round_trip(tmp_path):
    """A dried-up feed keeps its VP identity through the checkpoint."""
    checkpoint = StreamCheckpoint(tmp_path)
    collector, peer_asn, peer_address = "rrc01", 7, "10.9.7.1"
    empty = RouteRecord(
        "rib", "ris", collector, peer_asn, peer_address, 900, []
    )
    checkpoint.save(1, 900, [boundary_record(), empty], CONFIG)
    _, restored = checkpoint.load()
    assert [r.peer_id for r in restored] == [
        ("rrc00", 1, "10.9.1.1"), ("rrc01", 7, "10.9.7.1")
    ]
    assert tuple(restored[1].elements) == ()


def test_no_tmp_litter_after_save(tmp_path):
    checkpoint = StreamCheckpoint(tmp_path)
    checkpoint.save(1, 900, [boundary_record()], CONFIG)
    leftovers = [p.name for p in tmp_path.iterdir() if ".tmp" in p.name]
    assert leftovers == []


def test_clear_removes_state_and_ribs(tmp_path):
    checkpoint = StreamCheckpoint(tmp_path)
    checkpoint.save(1, 900, [boundary_record()], CONFIG)
    checkpoint.clear()
    assert checkpoint.load() is None
    assert list(tmp_path.glob("rib-*.jsonl.gz")) == []
    checkpoint.clear()  # idempotent
