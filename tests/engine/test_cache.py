"""Cache correctness: key sensitivity, round-trips, corruption recovery."""

import dataclasses
import json
import threading


from repro.core.sanitize import SanitizationConfig
from repro.engine.cache import (
    CACHE_SALT,
    ResultCache,
    content_digest,
    job_digest,
)
from repro.engine.jobs import (
    SnapshotJob,
    build_jobs,
    execute_snapshot_job,
    suite_times,
)
from repro.engine.metrics import EngineMetrics
from repro.engine.scheduler import ExecutionEngine
from repro.net.prefix import AF_INET, AF_INET6
from repro.util.dates import utc_timestamp

from tests.engine.conftest import ENGINE_WORLD


def make_job(**overrides):
    defaults = dict(
        params=ENGINE_WORLD,
        start=utc_timestamp(2004, 1, 1),
        warmup=(),
        times=suite_times(2004, 1, with_stability=False),
        family=AF_INET,
        sanitization=None,
        label="2004-01",
        calendar_year=2004,
        month=1,
        report_year=2004.0,
    )
    defaults.update(overrides)
    return SnapshotJob(**defaults)


class TestDigest:
    def test_stable_across_equal_jobs(self):
        assert job_digest(make_job()) == job_digest(make_job())

    def test_every_sanitization_field_is_keyed(self):
        """Changing any SanitizationConfig field must change the digest."""
        base = job_digest(make_job(sanitization=SanitizationConfig()))
        changed = [
            SanitizationConfig(fullfeed_ratio=0.8),
            SanitizationConfig(min_collectors=3),
            SanitizationConfig(min_peer_ases=5),
            SanitizationConfig(max_prefix_length={AF_INET: 22, AF_INET6: 48}),
            SanitizationConfig(max_corrupt_record_share=0.5),
            SanitizationConfig(max_private_asn_share=0.5),
            SanitizationConfig(max_duplicate_share=0.5),
            SanitizationConfig(keep_all_lengths=True),
        ]
        # Guard against a silently added field this test would miss.
        assert len(changed) == len(dataclasses.fields(SanitizationConfig))
        digests = {job_digest(make_job(sanitization=config)) for config in changed}
        assert base not in digests
        assert len(digests) == len(changed)

    def test_world_seed_and_scale_keyed(self):
        base = job_digest(make_job())
        reseeded = dataclasses.replace(ENGINE_WORLD, seed=32)
        rescaled = dataclasses.replace(ENGINE_WORLD, as_scale=1 / 300.0)
        assert job_digest(make_job(params=reseeded)) != base
        assert job_digest(make_job(params=rescaled)) != base

    def test_timestamp_family_and_cadence_keyed(self):
        base = job_digest(make_job())
        assert job_digest(make_job(times=suite_times(2005, 1, False))) != base
        assert job_digest(make_job(family=AF_INET6)) != base
        warmed = make_job(warmup=suite_times(2003, 1, False))
        assert job_digest(warmed) != base

    def test_salt_is_keyed(self):
        job = make_job()
        assert job_digest(job, salt=CACHE_SALT) != job_digest(job, salt="v2")

    def test_label_is_not_keyed(self):
        """Cosmetic fields must not fragment the cache."""
        assert job_digest(make_job(label="a")) == job_digest(make_job(label="b"))

    def test_salt_is_v3(self):
        """The canonical-form fix must invalidate v2 entries."""
        assert CACHE_SALT == "repro-engine-v3"


class TestCanonicalCollisions:
    """Regressions for the v2 canonical form's digest collisions."""

    def test_int_and_str_keys_do_not_collide(self):
        """v2 coerced keys with str(), so {1: x} == {"1": x}."""
        assert content_digest({1: "x"}) != content_digest({"1": "x"})

    def test_bool_and_int_keys_do_not_collide(self):
        assert content_digest({True: "x"}) != content_digest({1: "x"})

    def test_dict_and_pair_list_do_not_collide(self):
        """v2 canonicalized a dict to a sorted list of pairs, which is
        indistinguishable from a literal list of 2-tuples."""
        as_dict = {"a": 1, "b": 2}
        as_pairs = [["a", 1], ["b", 2]]
        assert content_digest(as_dict) != content_digest(as_pairs)

    def test_typed_pair_list_does_not_collide_either(self):
        """Nor may a pair list that mimics the v3 key tagging."""
        mimic = [[["str", "a"], 1]]
        assert content_digest({"a": 1}) != content_digest(mimic)
        assert content_digest({"a": 1}) != content_digest(["map", mimic])

    def test_dict_key_order_is_canonical(self):
        assert content_digest({"a": 1, "b": 2}) == content_digest(
            {"b": 2, "a": 1}
        )

    def test_mixed_key_types_are_orderable(self):
        """Int and str keys in one dict must digest without TypeError."""
        digest = content_digest({4: 24, 6: 48, "note": "families"})
        assert digest == content_digest({"note": "families", 6: 48, 4: 24})

    def test_tuple_and_list_spellings_are_equal(self):
        """Tuples vs lists stay interchangeable (spec round-trips
        through JSON, which cannot tell them apart)."""
        assert content_digest((1, 2, 3)) == content_digest([1, 2, 3])

    def test_salt_distinguishes(self):
        assert content_digest({"a": 1}) != content_digest(
            {"a": 1}, salt="other"
        )


class TestResultCache:
    def test_hit_returns_equal_result(self, tmp_path):
        job = make_job()
        computed = execute_snapshot_job(job)
        cache = ResultCache(tmp_path)
        key = job_digest(job)
        cache.put(key, computed)
        restored = cache.get(key)
        assert restored is not None
        assert restored.stats == computed.stats
        assert restored.formation_shares == computed.formation_shares
        assert restored.stability == computed.stability
        assert restored.feed == computed.feed
        assert restored.report == computed.report
        assert restored.record_count == computed.record_count

    def test_miss_on_unknown_key(self, tmp_path):
        assert ResultCache(tmp_path).get("0" * 64) is None

    def test_corrupted_entry_discarded_not_crashed(self, tmp_path):
        job = make_job()
        cache = ResultCache(tmp_path)
        key = job_digest(job)
        cache.put(key, execute_snapshot_job(job))
        path = cache._path(key)
        path.write_text("{ not json", encoding="utf-8")
        assert cache.get(key) is None
        assert not path.exists()  # poisoned entry removed

    def test_wrong_key_payload_discarded(self, tmp_path):
        """An entry whose embedded key disagrees with its name is stale."""
        job = make_job()
        cache = ResultCache(tmp_path)
        key = job_digest(job)
        cache.put(key, execute_snapshot_job(job))
        payload = json.loads(cache._path(key).read_text(encoding="utf-8"))
        payload["key"] = "f" * 64
        cache._path(key).write_text(json.dumps(payload), encoding="utf-8")
        assert cache.get(key) is None

    def test_concurrent_puts_never_persist_a_corrupt_entry(self, tmp_path):
        """Writers racing on the same key must not corrupt the entry.

        With the shared per-process tmp name, one thread could truncate
        the tmp file while another's os.replace was pending, persisting
        a partial JSON document.  Every surviving entry must round-trip.
        """
        job = make_job()
        computed = execute_snapshot_job(job)
        cache = ResultCache(tmp_path)
        keys = [f"{index:02d}" + "a" * 62 for index in range(4)]
        errors = []
        barrier = threading.Barrier(8)

        def hammer(key):
            try:
                barrier.wait()
                for _ in range(25):
                    cache.put(key, computed)
            except Exception as error:  # pragma: no cover - failure path
                errors.append(error)

        threads = [
            threading.Thread(target=hammer, args=(key,))
            for key in keys
            for _ in range(2)  # two writers per key race on one path
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        assert not errors
        for key in keys:
            restored = cache.get(key)
            assert restored is not None, f"entry {key} did not round-trip"
            assert restored.stats == computed.stats
        # No tmp litter left behind by the unique-suffix writes.
        assert not list(tmp_path.glob("**/*.tmp*"))

    def test_engine_recomputes_after_corruption(self, tmp_path):
        """End to end: a corrupted cache entry is recomputed, not fatal."""
        jobs = build_jobs(
            ENGINE_WORLD,
            utc_timestamp(2004, 1, 1),
            [(2004, 1, 2004.0), (2004, 4, 2004.25)],
            with_stability=False,
        )
        cache = ResultCache(tmp_path)
        first = ExecutionEngine(jobs=1, cache=cache).run(jobs)

        cache._path(job_digest(jobs[0])).write_bytes(b"\x00garbage")
        from repro.engine.jobs import clear_worker_state

        clear_worker_state()
        metrics = EngineMetrics()
        second = ExecutionEngine(jobs=1, cache=cache, metrics=metrics).run(jobs)
        summary = metrics.summary()
        assert summary["computed"] == 1 and summary["cache_hits"] == 1
        for a, b in zip(first, second):
            assert a.stats == b.stats and a.feed == b.feed
