"""World-lineage checkpoints and worker gap-advance determinism.

The engine's determinism invariant — a world's state is a pure
function of (params, birth instant, applied ``advance_to`` cadence) —
is what makes both features safe:

* a pickled world restored from disk and advanced over the remaining
  gap must produce value-identical results to a from-birth replay;
* a cold worker receiving jobs out of chronological order must advance
  each lineage through warmup gaps and still match the serial run.
"""

import json
import pickle

import pytest

from repro.engine.checkpoint import WorldCheckpoint
from repro.engine.jobs import (
    build_jobs,
    clear_worker_state,
    execute_snapshot_job,
    result_to_payload,
)
from repro.obs import Tracer, use_tracer
from repro.simulation.scenario import SimulatedInternet
from repro.util.dates import utc_timestamp

from tests.engine.conftest import ENGINE_WORLD

START = utc_timestamp(2004, 1, 1)
QUARTERS = [(2004, 1, 2004.0), (2005, 1, 2005.0), (2006, 1, 2006.0)]


def sweep_jobs(tmp_dir=None, stride=4, with_stability=False):
    return build_jobs(
        ENGINE_WORLD,
        START,
        QUARTERS,
        with_stability=with_stability,
        world_checkpoint_dir=str(tmp_dir) if tmp_dir else None,
        world_checkpoint_stride=stride,
    )


def payload_bytes(result) -> bytes:
    return json.dumps(result_to_payload(result)).encode("utf-8")


class TestValueClassPickling:
    """The seven immutable __slots__ classes must survive pickling —
    a world snapshot embeds all of them."""

    def test_prefix_and_paths(self):
        from repro.bgp.attributes import Community, Origin, PathAttributes
        from repro.net.aspath import ASPath, PathSegment, SegmentType
        from repro.net.prefix import AF_INET, Prefix

        prefix = Prefix(AF_INET, 0x0A010000, 16)
        path = ASPath((PathSegment(SegmentType.AS_SEQUENCE, (64512, 64513)),))
        attrs = PathAttributes(
            as_path=path,
            communities=(Community(64512, 100),),
            med=5,
            local_pref=200,
            origin=Origin.IGP,
        )
        for value in (prefix, path.segments[0], path,
                      next(iter(attrs.communities)), attrs):
            clone = pickle.loads(pickle.dumps(value))
            assert clone == value
            # Still immutable after the round-trip.
            with pytest.raises(AttributeError):
                clone.__setattr__("med", 1)

    def test_whole_world_round_trips(self):
        internet = SimulatedInternet(ENGINE_WORLD, start="2004-01-01")
        internet.advance_to(START + 86400)
        clone = pickle.loads(pickle.dumps(internet))
        when = START + 2 * 86400
        internet.advance_to(when)
        clone.advance_to(when)
        original = [str(r) for r in internet.rib_records(when)]
        restored = [str(r) for r in clone.rib_records(when)]
        assert restored == original


class TestWorldCheckpoint:
    def test_save_restore_round_trip(self, tmp_path):
        checkpoint = WorldCheckpoint(tmp_path)
        internet = SimulatedInternet(ENGINE_WORLD, start="2004-01-01")
        cadence = [START + 86400, START + 7 * 86400]
        for when in cadence:
            internet.advance_to(when)
        path = checkpoint.save(internet, cadence)
        assert path is not None and path.is_file()
        # Idempotent: same lineage saves nothing the second time.
        assert checkpoint.save(internet, cadence) is None
        restored = checkpoint.restore(ENGINE_WORLD, START, cadence)
        assert restored is not None
        clone, applied = restored
        assert applied == cadence
        when = START + 14 * 86400
        internet.advance_to(when)
        clone.advance_to(when)
        assert [str(r) for r in clone.rib_records(when)] == [
            str(r) for r in internet.rib_records(when)
        ]

    def test_restore_prefers_longest_prefix(self, tmp_path):
        checkpoint = WorldCheckpoint(tmp_path)
        internet = SimulatedInternet(ENGINE_WORLD, start="2004-01-01")
        cadence = [START + n * 86400 for n in (1, 2, 3)]
        applied = []
        for when in cadence:
            internet.advance_to(when)
            applied.append(when)
            checkpoint.save(internet, applied)
        target = cadence + [START + 30 * 86400]
        restored = checkpoint.restore(ENGINE_WORLD, START, target)
        assert restored is not None
        assert restored[1] == cadence  # the full 3-instant prefix

    def test_corruption_is_a_miss_not_a_crash(self, tmp_path):
        checkpoint = WorldCheckpoint(tmp_path)
        internet = SimulatedInternet(ENGINE_WORLD, start="2004-01-01")
        cadence = [START + 86400]
        internet.advance_to(cadence[0])
        path = checkpoint.save(internet, cadence)
        damaged = bytearray(path.read_bytes())
        damaged[-1] ^= 0xFF
        path.write_bytes(bytes(damaged))
        assert checkpoint.restore(ENGINE_WORLD, START, cadence) is None
        assert not path.exists()  # dropped for a clean rewrite

    def test_cadence_mismatch_is_a_miss(self, tmp_path):
        checkpoint = WorldCheckpoint(tmp_path)
        internet = SimulatedInternet(ENGINE_WORLD, start="2004-01-01")
        cadence = [START + 86400]
        internet.advance_to(cadence[0])
        path = checkpoint.save(internet, cadence)
        # Same file renamed onto a different cadence's slot.
        other = checkpoint.path_for(ENGINE_WORLD, START, [START + 2 * 86400])
        other.parent.mkdir(parents=True, exist_ok=True)
        path.replace(other)
        assert (
            checkpoint.restore(ENGINE_WORLD, START, [START + 2 * 86400])
            is None
        )

    def test_distinct_lineages_do_not_collide(self, tmp_path):
        checkpoint = WorldCheckpoint(tmp_path)
        cadence = [START + 86400]
        assert checkpoint.path_for(ENGINE_WORLD, START, cadence) != (
            checkpoint.path_for(ENGINE_WORLD, START + 60, cadence)
        )


class TestCheckpointedJobExecution:
    @pytest.fixture(scope="class")
    def baseline(self):
        clear_worker_state()
        return [execute_snapshot_job(job) for job in sweep_jobs()]

    def test_sweep_writes_stride_aligned_checkpoints(self, tmp_path,
                                                     baseline):
        jobs = sweep_jobs(tmp_path, stride=2)
        clear_worker_state()
        tracer = Tracer()
        with use_tracer(tracer):
            results = [execute_snapshot_job(job) for job in jobs]
        assert [payload_bytes(r) for r in results] == [
            payload_bytes(r) for r in baseline
        ]
        saves = tracer.counters.get("exchange.world_saves", 0)
        files = list(tmp_path.glob("world-*.ckpt"))
        assert saves == len(files) > 0
        # Each file's length token is stride-aligned.
        assert all(int(f.name.split("-")[2]) % 2 == 0 for f in files)

    def test_cold_worker_restores_instead_of_replaying(self, tmp_path,
                                                       baseline):
        jobs = sweep_jobs(tmp_path, stride=2)
        clear_worker_state()
        for job in jobs:
            execute_snapshot_job(job)
        # Fresh "worker": run only the last job; it must restore.
        clear_worker_state()
        tracer = Tracer()
        with use_tracer(tracer):
            redo = execute_snapshot_job(jobs[-1])
        assert payload_bytes(redo) == payload_bytes(baseline[-1])
        assert tracer.counters.get("exchange.world_restores") == 1
        assert tracer.counters.get("exchange.world_restored_instants", 0) > 0

    def test_empty_checkpoint_dir_counts_a_miss(self, tmp_path, baseline):
        jobs = sweep_jobs(tmp_path / "never-written", stride=2)
        clear_worker_state()
        tracer = Tracer()
        with use_tracer(tracer):
            result = execute_snapshot_job(jobs[-1])
        assert payload_bytes(result) == payload_bytes(baseline[-1])
        assert tracer.counters.get("exchange.world_restore_misses") == 1
        assert "exchange.world_restores" not in tracer.counters


class TestOutOfOrderGapAdvance:
    """Satellite: out-of-chronological-order job delivery must produce
    value-identical results via the per-process world gap advance."""

    @pytest.fixture(scope="class")
    def chronological(self):
        clear_worker_state()
        return [execute_snapshot_job(job) for job in sweep_jobs()]

    @pytest.mark.parametrize("order", [(2, 1, 0), (1, 2, 0), (2, 0, 1)])
    def test_permuted_delivery_matches(self, order, chronological):
        jobs = sweep_jobs()
        clear_worker_state()
        results = {}
        for index in order:
            results[index] = execute_snapshot_job(jobs[index])
        for index, expected in enumerate(chronological):
            assert payload_bytes(results[index]) == payload_bytes(expected)

    def test_permuted_delivery_with_checkpoints(self, tmp_path,
                                                chronological):
        """Checkpoint restores must respect the same invariant: a
        backwards jump rebuilds (restore included), never rewinds."""
        jobs = sweep_jobs(tmp_path, stride=2)
        clear_worker_state()
        for job in jobs:  # populate the checkpoint directory
            execute_snapshot_job(job)
        clear_worker_state()
        late = execute_snapshot_job(jobs[2])
        early = execute_snapshot_job(jobs[0])
        middle = execute_snapshot_job(jobs[1])
        assert payload_bytes(late) == payload_bytes(chronological[2])
        assert payload_bytes(early) == payload_bytes(chronological[0])
        assert payload_bytes(middle) == payload_bytes(chronological[1])

    def test_stability_suite_out_of_order(self):
        """The 4-instant stability cadence is the dense case: permuted
        quarters still gap-advance to identical suites."""
        jobs = build_jobs(
            ENGINE_WORLD,
            START,
            [(2004, 1, 2004.0), (2005, 1, 2005.0)],
            with_stability=True,
        )
        clear_worker_state()
        expected = [execute_snapshot_job(job) for job in jobs]
        clear_worker_state()
        second = execute_snapshot_job(jobs[1])
        first = execute_snapshot_job(jobs[0])
        assert payload_bytes(second) == payload_bytes(expected[1])
        assert payload_bytes(first) == payload_bytes(expected[0])
