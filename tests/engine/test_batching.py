"""Batched fan-out and the missing-result guard.

``batch > 1`` ships chronological chunks of jobs per pool task; it must
be a pure throughput knob — results value-identical to ``jobs=1``.  The
scheduler must also refuse to return fewer results than jobs were
submitted (an engine bug, a worker that produced nothing) instead of
silently dropping slots.
"""

import pytest

from repro.engine.jobs import build_jobs, execute_snapshot_batch
from repro.engine.metrics import EngineMetrics
from repro.engine.scheduler import EngineError, ExecutionEngine
from repro.util.dates import utc_timestamp

from tests.engine.conftest import ENGINE_WORLD
from tests.engine.test_scheduler import all_series, run_sweep


def two_quarter_jobs():
    return build_jobs(
        ENGINE_WORLD,
        utc_timestamp(2004, 1, 1),
        [(2004, 1, 2004.0), (2004, 4, 2004.25)],
        with_stability=False,
    )


class TestBatchedSweep:
    def test_batched_series_identical_to_serial(self):
        serial = run_sweep(jobs=1)
        batched = run_sweep(jobs=2, batch=2)
        for line_s, line_b in zip(all_series(serial), all_series(batched)):
            assert line_s.name == line_b.name
            assert line_s.points == line_b.points  # exact, not approx

    def test_batch_worker_returns_one_payload_per_job(self):
        jobs = two_quarter_jobs()
        payload = execute_snapshot_batch(jobs)
        assert len(payload["items"]) == len(jobs)
        assert isinstance(payload["worker"], int)
        for item in payload["items"]:
            assert item["seconds"] >= 0.0
            assert item["payload"]["label"]

    def test_sweep_start_reports_batch(self):
        events = []
        engine = ExecutionEngine(
            jobs=1, batch=3,
            hooks=[lambda name, data: events.append((name, data))],
        )
        engine.run([])
        assert ("sweep_start", {"jobs": 0, "workers": 1, "batch": 3}) in events

    def test_batch_must_be_positive(self):
        with pytest.raises(ValueError):
            ExecutionEngine(batch=0)


class TestMissingResultGuard:
    def test_dropped_slots_raise_engine_error_with_labels(self, monkeypatch):
        """A sweep that produces nothing must name the missing jobs."""
        jobs = two_quarter_jobs()
        engine = ExecutionEngine(jobs=1, metrics=EngineMetrics())
        monkeypatch.setattr(
            engine, "_run_serial", lambda *args, **kwargs: None
        )
        with pytest.raises(EngineError) as excinfo:
            engine.run(jobs)
        message = str(excinfo.value)
        assert "2 of 2" in message
        for job in jobs:
            assert job.label in message
