"""Tests for IPv4/IPv6 sibling-atom matching (paper §7.3)."""


from repro.analysis.siblings import (
    dual_stack_origins,
    match_sibling_atoms,
)
from repro.core.atoms import AtomSet, PolicyAtom
from repro.net.aspath import ASPath
from repro.net.prefix import Prefix

VP = [("rrc00", 1, "a")]


def atom(atom_id, prefixes, path):
    return PolicyAtom(
        atom_id,
        frozenset(Prefix.parse(t) for t in prefixes),
        (ASPath.parse(path),),
    )


def v4_set():
    return AtomSet(
        [
            atom(0, ["10.0.0.0/24", "10.0.1.0/24", "10.0.2.0/24"], "1 5 9"),
            atom(1, ["10.0.3.0/24"], "1 6 9"),
            atom(2, ["10.1.0.0/24"], "1 5 8"),
        ],
        VP,
    )


def v6_set():
    return AtomSet(
        [
            atom(0, ["2001:db8:0::/48", "2001:db8:1::/48", "2001:db8:2::/48"], "1 5 9"),
            atom(1, ["2001:db8:f::/48"], "1 6 9"),
        ],
        VP,
    )


class TestDualStack:
    def test_dual_stack_origins(self):
        assert dual_stack_origins(v4_set(), v6_set()) == [9]


class TestMatching:
    def test_structural_match(self):
        candidates = match_sibling_atoms(v4_set(), v6_set())
        assert candidates
        by_v4 = {c.v4_atom.atom_id: c for c in candidates}
        # The big v4 atom pairs with the big v6 atom, the single-prefix
        # atoms pair with each other.
        assert by_v4[0].v6_atom.atom_id == 0
        assert by_v4[1].v6_atom.atom_id == 1

    def test_one_to_one(self):
        candidates = match_sibling_atoms(v4_set(), v6_set())
        v6_ids = [c.v6_atom.atom_id for c in candidates]
        assert len(v6_ids) == len(set(v6_ids))

    def test_only_shared_origins_matched(self):
        candidates = match_sibling_atoms(v4_set(), v6_set())
        assert all(c.origin == 9 for c in candidates)

    def test_min_similarity_threshold(self):
        candidates = match_sibling_atoms(v4_set(), v6_set(), min_similarity=1.01)
        assert candidates == []

    def test_prefix_pairs(self):
        candidates = match_sibling_atoms(v4_set(), v6_set())
        single_pair = [c for c in candidates if c.v4_atom.atom_id == 1][0]
        assert single_pair.prefix_pairs() == [("10.0.3.0/24", "2001:db8:f::/48")]

    def test_similarity_ordering(self):
        candidates = match_sibling_atoms(v4_set(), v6_set())
        scores = [c.similarity for c in candidates]
        assert scores == sorted(scores, reverse=True)


class TestIntegration:
    def test_simulated_dual_stack_world(self, internet_2024):
        from repro.core.pipeline import compute_policy_atoms
        from repro.net.prefix import AF_INET6

        v4 = compute_policy_atoms(internet_2024.rib_records("2024-10-15 08:00"))
        v6 = compute_policy_atoms(
            internet_2024.rib_records("2024-10-15 08:00", family=AF_INET6)
        )
        shared = dual_stack_origins(v4.atoms, v6.atoms)
        assert shared, "2024 world must have dual-stack origins"
        candidates = match_sibling_atoms(v4.atoms, v6.atoms)
        assert candidates
        for candidate in candidates[:20]:
            assert candidate.origin in shared
            assert 0.0 < candidate.similarity <= 1.0
