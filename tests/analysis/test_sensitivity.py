"""Tests for the threshold-sensitivity analysis (Table 7)."""

import pytest

from repro.analysis.sensitivity import sensitivity_rows, threshold_sensitivity
from repro.bgp.rib import RIBSnapshot


@pytest.fixture(scope="module")
def grid(records_2024):
    snapshot = RIBSnapshot.from_records(records_2024)
    return threshold_sensitivity(snapshot)


class TestGrid:
    def test_full_grid_computed(self, grid):
        assert set(grid) == {(c, p) for c in (1, 2, 3) for p in (1, 2, 3, 4, 5)}

    def test_monotone_in_both_axes(self, grid):
        for c in (1, 2, 3):
            for p in (1, 2, 3, 4):
                assert grid[(c, p)] >= grid[(c, p + 1)]
        for p in (1, 2, 3, 4, 5):
            for c in (1, 2):
                assert grid[(c, p)] >= grid[(c + 1, p)]

    def test_adopted_cell_close_to_loosest(self, grid):
        """The paper's point: (>=2, >=4) removes only a sliver."""
        adopted = grid[(2, 4)]
        loosest = grid[(1, 1)]
        assert adopted > 0
        assert adopted >= 0.8 * loosest

    def test_rows_layout(self, grid):
        rows = sensitivity_rows(grid)
        assert len(rows) == 3
        assert rows[0][0] == 1 and len(rows[0]) == 6
        assert rows[1][4] == grid[(2, 4)]
