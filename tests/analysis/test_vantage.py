"""Tests for the vantage-point split study."""

import pytest

from repro.analysis.vantage import VantageStudy
from repro.simulation.scenario import SimulatedInternet
from repro.topology.evolution import WorldParams

PARAMS = WorldParams(
    seed=55,
    as_scale=1 / 400.0,
    prefix_scale=1 / 400.0,
    peer_scale=0.04,
    collector_scale=0.3,
    min_fullfeed_peers=8,
)


@pytest.fixture(scope="module")
def vantage_result():
    simulator = SimulatedInternet(PARAMS, start="2018-01-01 08:00")
    study = VantageStudy(simulator)
    return study.run(simulator.current_time, days=8)


class TestStudy:
    def test_day_count(self, vantage_result):
        # 8 snapshots -> 6 (t, t+1, t+2) triples.
        assert len(vantage_result.days) == 6

    def test_requires_three_days(self):
        simulator = SimulatedInternet(PARAMS, start="2018-01-01 08:00")
        with pytest.raises(ValueError):
            VantageStudy(simulator).run(simulator.current_time, days=2)

    def test_events_have_observers(self, vantage_result):
        for event in vantage_result.all_events():
            assert event.fragment_count >= 2
            assert event.observer_count >= 0

    def test_observer_cdf_monotone(self, vantage_result):
        cdf = vantage_result.observer_cdf()
        if not cdf:
            pytest.skip("no split events in this window")
        shares = [share for _, share in cdf]
        assert shares == sorted(shares)
        assert shares[-1] == pytest.approx(1.0)

    def test_share_helpers_consistent(self, vantage_result):
        if not vantage_result.all_events():
            pytest.skip("no split events in this window")
        single = vantage_result.share_single_observer()
        upto3 = vantage_result.share_at_most(3)
        assert 0 <= single <= upto3 <= 1.0

    def test_daily_breakdowns(self, vantage_result):
        for day in vantage_result.days:
            breakdown = day.breakdown()
            assert (
                breakdown["single"] + breakdown["multi"] + breakdown["unobserved"]
                == len(day.events)
            )
            assert (
                breakdown["single_top"]
                + breakdown["single_second"]
                + breakdown["single_rest"]
                == breakdown["single"]
            )
