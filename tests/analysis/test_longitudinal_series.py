"""Focused tests for the trend-series builders on synthetic results."""


from repro.analysis.longitudinal import (
    YearResult,
    formation_trend_series,
    fullfeed_trend_series,
    stability_trend_series,
)
from repro.core.statistics import GeneralStats


def make_result(year, d1=0.4, cam_8h=0.96, mpm_8h=0.98, cam_1w=0.80,
                mpm_1w=0.90, max_prefixes=1000, full_feed=10):
    stats = GeneralStats(
        n_prefixes=100, n_ases=10, n_ases_one_atom=5, n_atoms=40,
        n_single_prefix_atoms=20, mean_atom_size=2.5, p99_atom_size=9,
        max_atom_size=12,
    )
    remaining = 1.0 - d1
    return YearResult(
        year=year,
        suite=None,
        stats=stats,
        formation_shares={1: d1, 2: remaining / 2, 3: remaining / 3,
                          4: remaining / 6, 5: 0.0},
        formation_shares_no_single={1: d1 / 2, 2: remaining / 2,
                                    3: remaining / 3, 4: remaining / 6, 5: 0.0},
        stability={"8h": (cam_8h, mpm_8h), "24h": (0.9, 0.95),
                   "1w": (cam_1w, mpm_1w)},
        feed={"max_prefixes": max_prefixes, "threshold": int(0.9 * max_prefixes),
              "full_feed": full_feed, "partial": 3},
    )


RESULTS = [
    make_result(2004, d1=0.45, max_prefixes=1315, full_feed=5),
    make_result(2014, d1=0.30, max_prefixes=5000, full_feed=12),
    make_result(2024, d1=0.20, cam_8h=0.84, max_prefixes=10000, full_feed=24),
]


class TestFormationSeries:
    def test_solid_and_dashed_lines(self):
        series = formation_trend_series(RESULTS)
        names = [line.name for line in series]
        assert "distance 1" in names
        assert "distance 1 (excl. single-atom ASes)" in names
        assert len(series) == 10

    def test_values_are_percentages(self):
        series = formation_trend_series(RESULTS)
        by_name = {line.name: line for line in series}
        assert by_name["distance 1"].ys() == [45.0, 30.0, 20.0]

    def test_custom_max_distance(self):
        series = formation_trend_series(RESULTS, max_distance=3)
        assert len(series) == 6


class TestStabilitySeries:
    def test_four_lines(self):
        series = stability_trend_series(RESULTS)
        assert len(series) == 4

    def test_values(self):
        by_name = {line.name: line for line in stability_trend_series(RESULTS)}
        cam = by_name["Complete atom match (after 8 hours)"]
        assert cam.ys() == [96.0, 96.0, 84.0]
        week = by_name["Maximized prefix match (after 1 week)"]
        assert week.ys() == [90.0, 90.0, 90.0]

    def test_missing_horizon_yields_none(self):
        result = make_result(2010)
        result.stability.pop("1w")
        series = stability_trend_series([result])
        by_name = {line.name: line for line in series}
        assert by_name["Complete atom match (after 1 week)"].ys() == [None]


class TestFullfeedSeries:
    def test_threshold_and_peers(self):
        threshold, peers = fullfeed_trend_series(RESULTS)
        assert threshold.ys() == [1315.0, 5000.0, 10000.0]
        assert peers.ys() == [5.0, 12.0, 24.0]
        assert threshold.xs() == [2004, 2014, 2024]
