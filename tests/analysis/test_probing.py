"""Tests for the probing-target application (paper §5.5 / §6)."""

import pytest

from repro.analysis.probing import build_probing_plan, plan_accuracy, staleness_curve
from repro.core.atoms import AtomSet, PolicyAtom
from repro.net.aspath import ASPath
from repro.net.prefix import Prefix

VP = [("rrc00", 1, "a")]
P = [f"10.0.{i}.0/24" for i in range(8)]


def make_atoms(partition, id_base=0):
    atoms = [
        PolicyAtom(
            id_base + index,
            frozenset(Prefix.parse(text) for text in group),
            (ASPath.from_asns([1, 5, 9]),),
        )
        for index, group in enumerate(partition)
    ]
    return AtomSet(atoms, VP)


class TestPlan:
    def test_one_target_per_atom(self):
        plan = build_probing_plan(make_atoms([[P[0], P[1]], [P[2]]]))
        assert plan.target_count == 2
        assert plan.total_prefixes == 3
        # Deterministic representative: the lowest prefix.
        assert Prefix.parse(P[0]) in plan.targets()

    def test_reduction_factor(self):
        plan = build_probing_plan(make_atoms([[P[0], P[1], P[2], P[3]]]))
        assert plan.reduction_factor == pytest.approx(4.0)

    def test_all_prefixes_covered(self):
        atoms = make_atoms([[P[0], P[1]], [P[2], P[3]], [P[4]]])
        plan = build_probing_plan(atoms)
        assert set(plan.covered_by) == atoms.prefixes()

    def test_empty(self):
        plan = build_probing_plan(make_atoms([]))
        assert plan.target_count == 0
        assert plan.reduction_factor == 1.0


class TestAccuracy:
    def test_perfect_when_unchanged(self):
        atoms = make_atoms([[P[0], P[1]], [P[2]]])
        plan = build_probing_plan(atoms)
        later = make_atoms([[P[0], P[1]], [P[2]]], id_base=10)
        assert plan_accuracy(plan, later) == 1.0

    def test_drifted_prefix_counts_against(self):
        plan = build_probing_plan(make_atoms([[P[0], P[1], P[2]]]))
        # P[2] moved to its own atom: representative P[0] no longer
        # observes its paths.
        later = make_atoms([[P[0], P[1]], [P[2]]], id_base=10)
        assert plan_accuracy(plan, later) == pytest.approx(2 / 3)

    def test_vanished_prefix_counts_against(self):
        plan = build_probing_plan(make_atoms([[P[0], P[1]]]))
        later = make_atoms([[P[0]]], id_base=10)
        assert plan_accuracy(plan, later) == pytest.approx(0.5)

    def test_new_prefixes_ignored(self):
        plan = build_probing_plan(make_atoms([[P[0]]]))
        later = make_atoms([[P[0]], [P[5]]], id_base=10)
        assert plan_accuracy(plan, later) == 1.0

    def test_staleness_curve_shape(self):
        plan = build_probing_plan(make_atoms([[P[0], P[1]], [P[2], P[3]]]))
        fresh = make_atoms([[P[0], P[1]], [P[2], P[3]]], id_base=10)
        drifted = make_atoms([[P[0]], [P[1]], [P[2], P[3]]], id_base=20)
        curve = staleness_curve(plan, [(0.0, fresh), (7.0, drifted)])
        assert curve[0] == (0.0, 1.0)
        assert curve[1][1] < 1.0


class TestOnSimulatedWorld:
    def test_probing_saves_and_stays_accurate(self):
        # Advancing time requires a private simulator (the session
        # fixtures are frozen at their snapshot instant).
        from repro.core.pipeline import compute_policy_atoms
        from repro.simulation.scenario import SimulatedInternet
        from tests.conftest import TEST_WORLD

        internet = SimulatedInternet(TEST_WORLD, start="2004-01-15 08:00")
        base = compute_policy_atoms(
            internet.rib_records("2004-01-15 08:00")
        ).atoms
        plan = build_probing_plan(base)
        assert plan.reduction_factor > 1.5  # meaningful probe savings
        later = compute_policy_atoms(
            internet.rib_records("2004-01-16 08:00")
        ).atoms
        accuracy = plan_accuracy(plan, later)
        assert accuracy > 0.85  # a day-old plan still measures well
