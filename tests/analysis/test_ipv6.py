"""Tests for the IPv6 study (§5)."""

import pytest

from repro.analysis.ipv6 import IPv6Study
from repro.simulation.scenario import SimulatedInternet
from repro.topology.evolution import WorldParams

PARAMS = WorldParams(
    seed=91,
    as_scale=1 / 300.0,
    prefix_scale=1 / 300.0,
    peer_scale=0.03,
    collector_scale=0.3,
    min_fullfeed_peers=6,
)


@pytest.fixture(scope="module")
def comparison():
    simulator = SimulatedInternet(PARAMS, start="2014-01-01")
    study = IPv6Study(simulator)
    return study.comparison(early_year=2014, recent_year=2022, month=1)


class TestComparison:
    def test_rows_structure(self, comparison):
        rows = comparison.rows()
        assert len(rows) == 8
        assert rows[0][0] == "Number of prefixes"
        assert all(len(row) == 4 for row in rows)

    def test_v6_smaller_than_v4(self, comparison):
        assert comparison.v6_recent.n_prefixes < comparison.v4_recent.n_prefixes
        assert comparison.v6_recent.n_ases < comparison.v4_recent.n_ases

    def test_v6_grows(self, comparison):
        assert comparison.v6_recent.n_prefixes > comparison.v6_early.n_prefixes
        assert comparison.v6_recent.n_ases >= comparison.v6_early.n_ases

    def test_v6_single_atom_share_declines(self, comparison):
        # §5.1: the share of single-atom ASes falls as IPv6 matures.
        assert (
            comparison.v6_recent.ases_one_atom_share
            <= comparison.v6_early.ases_one_atom_share + 0.05
        )


class TestOtherViews:
    def test_distribution_cdfs(self):
        simulator = SimulatedInternet(PARAMS, start="2022-01-01")
        study = IPv6Study(simulator)
        cdfs = study.distribution_cdfs(year=2022, month=1)
        for key in (
            "v4_atoms_per_as",
            "v6_atoms_per_as",
            "v4_prefixes_per_atom",
            "v6_prefixes_per_atom",
        ):
            assert cdfs[key], key
            assert cdfs[key][-1][1] == pytest.approx(1.0)

    def test_v6_trend_and_updates(self):
        simulator = SimulatedInternet(PARAMS, start="2016-01-01")
        study = IPv6Study(simulator)
        results = study.v6_trend([2016, 2018], with_stability=False)
        assert [r.year for r in results] == [2016, 2018]
        suite = study.v6_update_suite(year=2019, month=1)
        assert suite.updates is not None
