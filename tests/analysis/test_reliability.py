"""Tests for vantage-point reliability scoring (paper §7.1)."""

import pytest

from repro.analysis.reliability import (
    VPReliability,
    score_vantage_points,
    select_reliable,
)
from repro.core.splits import SplitEvent
from repro.net.prefix import Prefix

VPS = [("rrc00", 1, "a"), ("rrc00", 2, "b"), ("rrc01", 3, "c")]


def event(observers, n=0):
    return SplitEvent(
        prefixes=frozenset([Prefix.parse(f"10.0.{n}.0/24")]),
        fragment_count=2,
        observers=tuple(observers),
    )


class TestScoring:
    def test_solo_observer_scores_low(self):
        events = [event([VPS[0]], n=i) for i in range(5)]
        scored = {entry.peer: entry for entry in score_vantage_points(events, VPS)}
        assert scored[VPS[0]].score < scored[VPS[1]].score
        assert scored[VPS[0]].solo_splits == 5
        assert scored[VPS[1]].solo_splits == 0

    def test_silent_vp_scores_one(self):
        events = [event([VPS[0]])]
        scored = {entry.peer: entry for entry in score_vantage_points(events, VPS)}
        assert scored[VPS[2]].score == pytest.approx(1.0)

    def test_shared_observations_weigh_less(self):
        solo_events = [event([VPS[0]], n=i) for i in range(3)]
        shared_events = [event(VPS, n=10 + i) for i in range(3)]
        scored = {
            entry.peer: entry
            for entry in score_vantage_points(solo_events + shared_events, VPS)
        }
        assert scored[VPS[0]].score < scored[VPS[1]].score
        assert scored[VPS[1]].shared_splits == 3

    def test_no_events_all_perfect(self):
        scored = score_vantage_points([], VPS)
        assert all(entry.score == pytest.approx(1.0) for entry in scored)

    def test_suspicious_flag(self):
        entry = VPReliability(VPS[0], solo_splits=9, shared_splits=0, score=0.2)
        assert entry.suspicious
        entry = VPReliability(VPS[1], solo_splits=0, shared_splits=1, score=0.9)
        assert not entry.suspicious

    def test_results_sorted_worst_first(self):
        events = [event([VPS[1]], n=i) for i in range(4)]
        ranked = score_vantage_points(events, VPS)
        assert ranked[0].peer == VPS[1]


class TestSelection:
    def test_drops_worst_fraction(self):
        events = [event([VPS[2]], n=i) for i in range(6)]
        kept, dropped = select_reliable(events, VPS, drop_fraction=0.34)
        assert dropped == [VPS[2]]
        assert VPS[2] not in kept
        assert len(kept) + len(dropped) == len(VPS)

    def test_zero_fraction_keeps_all(self):
        events = [event([VPS[0]])]
        kept, dropped = select_reliable(events, VPS, drop_fraction=0.0)
        assert dropped == [] and len(kept) == 3
