"""Tests for the 2002 replication (§3)."""

import pytest

from repro.analysis.replication2002 import (
    ORIGINAL_STABILITY,
    Replication2002,
    replication_sanitization,
    replication_world_params,
)


@pytest.fixture(scope="module")
def replication_result():
    return Replication2002(scale=1 / 400.0).run()


class TestSetup:
    def test_thirteen_fullfeed_peers_single_collector(self):
        replication = Replication2002(scale=1 / 400.0)
        layout = replication.simulator.world.layout
        assert len(layout.collectors) == 1
        assert len(layout.fullfeed_peers()) == 13

    def test_no_artifacts(self):
        params = replication_world_params()
        assert params.inject_artifacts is False

    def test_sanitization_keeps_everything(self):
        config = replication_sanitization()
        assert config.keep_all_lengths
        assert config.min_collectors == 1
        assert config.min_peer_ases == 1


class TestResults:
    def test_scale_ratios_match_paper(self, replication_result):
        stats = replication_result.stats
        # Full scale: 12.5K ASes / 115K prefixes / 26K atoms.  The ratios
        # survive scaling: prefixes/AS ~ 9.2, atoms/prefix ~ 0.23.
        assert stats.n_prefixes / stats.n_ases == pytest.approx(9.2, rel=0.4)
        # 1/400 scale is noisy; the 1/100 benchmark asserts the tighter band.
        assert stats.n_atoms / stats.n_prefixes == pytest.approx(0.25, rel=0.55)

    def test_vantage_points_inferred_from_thirteen_peers(self, replication_result):
        # All 13 configured peers send full tables, but at 1/400 scale a
        # few legitimately miss >10 % of prefixes (scoped units their
        # region never hears), so the 90 % rule may trim the set.
        assert 8 <= len(replication_result.atoms.vantage_points) <= 13

    def test_stability_close_to_original(self, replication_result):
        for span, (orig_cam, orig_mpm) in ORIGINAL_STABILITY.items():
            cam, mpm = replication_result.stability[span]
            assert cam == pytest.approx(orig_cam, abs=0.12), span
            assert mpm == pytest.approx(orig_mpm, abs=0.12), span

    def test_stability_monotone_decay(self, replication_result):
        cam_8h = replication_result.stability["8h"][0]
        cam_1d = replication_result.stability["1d"][0]
        cam_1w = replication_result.stability["1w"][0]
        assert cam_8h >= cam_1d >= cam_1w

    def test_comparison_rows(self, replication_result):
        rows = replication_result.stability_comparison()
        assert [row[0] for row in rows] == ["8h", "1d", "1w"]

    def test_distribution_cdfs(self, replication_result):
        cdfs = replication_result.distribution_cdfs()
        for name in ("atoms_per_as", "prefixes_per_atom", "prefixes_per_as"):
            points = cdfs[name]
            assert points[-1][1] == pytest.approx(1.0)
            values = [share for _, share in points]
            assert values == sorted(values)

    def test_update_correlation_present(self, replication_result):
        assert replication_result.updates is not None
        assert replication_result.update_record_count > 0
