"""Tests for the longitudinal study driver."""

import pytest

from repro.analysis.longitudinal import (
    LongitudinalStudy,
    formation_trend_series,
    fullfeed_trend_series,
    stability_trend_series,
)
from repro.simulation.scenario import SimulatedInternet
from repro.topology.evolution import WorldParams

PARAMS = WorldParams(
    seed=31,
    as_scale=1 / 400.0,
    prefix_scale=1 / 400.0,
    peer_scale=0.03,
    collector_scale=0.3,
    min_fullfeed_peers=6,
)


@pytest.fixture(scope="module")
def study_results():
    simulator = SimulatedInternet(PARAMS, start="2006-01-01")
    study = LongitudinalStudy(simulator)
    return study.run_years([2006, 2010], with_stability=True)


class TestStudy:
    def test_runs_requested_years(self, study_results):
        assert [result.year for result in study_results] == [2006, 2010]

    def test_stats_populated(self, study_results):
        for result in study_results:
            assert result.stats.n_atoms > 0
            assert result.stats.n_prefixes >= result.stats.n_atoms

    def test_growth_between_years(self, study_results):
        assert study_results[1].stats.n_prefixes > study_results[0].stats.n_prefixes

    def test_formation_shares_normalised(self, study_results):
        for result in study_results:
            assert sum(result.formation_shares.values()) == pytest.approx(1.0, abs=0.01)

    def test_stability_pairs_present_and_ordered(self, study_results):
        for result in study_results:
            assert set(result.stability) == {"8h", "24h", "1w"}
            cam_8h = result.stability["8h"][0]
            cam_1w = result.stability["1w"][0]
            assert 0.5 < cam_1w <= cam_8h <= 1.0

    def test_feed_summary(self, study_results):
        for result in study_results:
            assert result.feed["full_feed"] >= PARAMS.min_fullfeed_peers

    def test_update_suite(self):
        simulator = SimulatedInternet(PARAMS, start="2006-01-01")
        study = LongitudinalStudy(simulator)
        suite = study.snapshot_suite(2006, with_stability=False, with_updates=True)
        assert suite.updates is not None
        assert suite.update_record_count > 0


class TestTrendSeries:
    def test_formation_series(self, study_results):
        series = formation_trend_series(study_results)
        # 5 distances x (solid + dashed)
        assert len(series) == 10
        for line in series:
            assert len(line.points) == 2

    def test_stability_series(self, study_results):
        series = stability_trend_series(study_results)
        assert len(series) == 4
        for line in series:
            values = [y for _, y in line.points if y is not None]
            assert all(0 <= value <= 100 for value in values)

    def test_fullfeed_series(self, study_results):
        threshold, peers = fullfeed_trend_series(study_results)
        assert threshold.last() >= threshold.points[0][1]  # table growth
        assert peers.last() >= PARAMS.min_fullfeed_peers


class TestIncrementalStudy:
    """snapshot_suite(incremental=True) is value-identical to the
    from-scratch walk, atom by atom, across consecutive quarters."""

    def _studies(self):
        full = LongitudinalStudy(SimulatedInternet(PARAMS, start="2006-01-01"))
        inc = LongitudinalStudy(
            SimulatedInternet(PARAMS, start="2006-01-01"), incremental=True
        )
        return full, inc

    @staticmethod
    def _assert_same_atoms(ours, theirs):
        assert len(ours.atoms) == len(theirs.atoms)
        for a, b in zip(ours.atoms.atoms, theirs.atoms.atoms):
            assert a.atom_id == b.atom_id
            assert a.prefixes == b.prefixes
            assert a.paths == b.paths

    def test_suites_identical_across_quarters(self):
        full, inc = self._studies()
        for year, month in ((2006, 1), (2006, 4)):
            suite_full = full.snapshot_suite(year, month, with_stability=True)
            suite_inc = inc.snapshot_suite(year, month, with_stability=True)
            for attr in ("base", "after_8h", "after_24h", "after_week"):
                self._assert_same_atoms(
                    getattr(suite_inc, attr), getattr(suite_full, attr)
                )
            assert suite_inc.stats() == suite_full.stats()
            assert suite_inc.stability() == suite_full.stability()
            assert suite_inc.feed() == suite_full.feed()

    def test_incremental_stats_track_the_walk(self):
        _, inc = self._studies()
        suite = inc.snapshot_suite(2006, 1, with_stability=True)
        stats = suite.incremental_stats
        assert stats["steps"] == 4
        assert stats["rebuilds"] + stats["incremental_steps"] == 4
        assert stats["rebuilds"] >= 1  # the first instant has no index yet
        assert stats["prefix_count"] == suite.atoms.prefix_count()
        # The quarter's later instants reuse the index: their dirty sets
        # must stay well under a per-snapshot full recomputation.
        if stats["incremental_steps"]:
            assert max(stats["dirty_sizes"]) < stats["prefix_count"]

    def test_full_path_untouched_by_flag_default(self):
        full, _ = self._studies()
        suite = full.snapshot_suite(2006, 1, with_stability=False)
        assert suite.incremental_stats == {}
