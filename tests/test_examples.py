"""Smoke checks for the example scripts.

Examples are runnable end to end (some take minutes), so the fast gate
here is: every example compiles, has a main() and a docstring, and the
quickest one actually runs.
"""

import ast
import pathlib
import subprocess
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).parent.parent / "examples"
EXAMPLES = sorted(EXAMPLES_DIR.glob("*.py"))


def test_examples_exist():
    names = {path.name for path in EXAMPLES}
    assert {"quickstart.py", "longitudinal_study.py", "ipv6_vs_ipv4.py",
            "replication_2002.py", "vantage_point_selection.py"} <= names
    assert len(EXAMPLES) >= 5


@pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.name)
def test_example_compiles_and_is_documented(path):
    source = path.read_text()
    tree = ast.parse(source, filename=str(path))
    assert ast.get_docstring(tree), f"{path.name} needs a module docstring"
    functions = {
        node.name for node in tree.body if isinstance(node, ast.FunctionDef)
    }
    assert "main" in functions, f"{path.name} needs a main() entry point"
    compile(source, str(path), "exec")


def test_quickstart_runs():
    result = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / "quickstart.py")],
        capture_output=True,
        text=True,
        timeout=600,
        cwd=EXAMPLES_DIR.parent,
    )
    assert result.returncode == 0, result.stderr
    assert "Number of atoms" in result.stdout
