"""Tests for RIB structures."""

from repro.bgp.attributes import PathAttributes
from repro.bgp.messages import ElementType, RouteElement, RouteRecord
from repro.bgp.rib import AdjRIBIn, RIBSnapshot
from repro.net.aspath import ASPath
from repro.net.prefix import AF_INET6, Prefix


def attrs(*asns):
    return PathAttributes(ASPath.from_asns(list(asns)))


def rib_record(collector, peer_asn, elements, timestamp=100):
    return RouteRecord(
        "rib", "ris", collector, peer_asn, f"10.0.{peer_asn % 256}.1",
        timestamp, elements,
    )


def announce(prefix, *asns):
    return RouteElement(ElementType.RIB, Prefix.parse(prefix), attrs(*asns))


class TestAdjRIBIn:
    def test_announce_withdraw(self):
        table = AdjRIBIn(("rrc00", 1, "10.0.0.1"))
        prefix = Prefix.parse("10.0.0.0/8")
        table.announce(prefix, attrs(1, 2))
        assert prefix in table and len(table) == 1
        table.withdraw(prefix)
        assert prefix not in table and len(table) == 0

    def test_withdraw_missing_is_noop(self):
        table = AdjRIBIn(("rrc00", 1, "10.0.0.1"))
        table.withdraw(Prefix.parse("10.0.0.0/8"))

    def test_reannounce_replaces(self):
        table = AdjRIBIn(("rrc00", 1, "10.0.0.1"))
        prefix = Prefix.parse("10.0.0.0/8")
        table.announce(prefix, attrs(1, 2))
        table.announce(prefix, attrs(1, 3))
        assert table.get(prefix).as_path.origin == 3

    def test_copy_is_independent(self):
        table = AdjRIBIn(("rrc00", 1, "10.0.0.1"))
        prefix = Prefix.parse("10.0.0.0/8")
        table.announce(prefix, attrs(1, 2))
        clone = table.copy()
        clone.withdraw(prefix)
        assert prefix in table


class TestRIBSnapshot:
    def test_from_records(self):
        snapshot = RIBSnapshot.from_records(
            [
                rib_record("rrc00", 1, [announce("10.0.0.0/8", 1, 9)]),
                rib_record("rrc01", 2, [announce("10.0.0.0/8", 2, 9)]),
            ]
        )
        assert len(snapshot.peers()) == 2
        assert snapshot.collectors() == {"rrc00", "rrc01"}

    def test_update_application(self):
        snapshot = RIBSnapshot()
        peer = ("rrc00", 1, "10.0.1.1")
        snapshot.apply_record(
            rib_record("rrc00", 1, [announce("10.0.0.0/8", 1, 9)], timestamp=100)
        )
        withdrawal = RouteRecord(
            "update", "ris", "rrc00", 1, "10.0.1.1", 200,
            [RouteElement(ElementType.WITHDRAWAL, Prefix.parse("10.0.0.0/8"))],
        )
        snapshot.apply_record(withdrawal)
        assert snapshot.path(peer, Prefix.parse("10.0.0.0/8")) is None
        assert snapshot.timestamp == 200

    def test_path_lookup(self):
        snapshot = RIBSnapshot.from_records(
            [rib_record("rrc00", 1, [announce("10.0.0.0/8", 1, 9)])]
        )
        peer = ("rrc00", 1, "10.0.1.1")
        assert snapshot.path(peer, Prefix.parse("10.0.0.0/8")) == ASPath.from_asns([1, 9])
        assert snapshot.path(peer, Prefix.parse("11.0.0.0/8")) is None
        assert snapshot.path(("x", 0, "y"), Prefix.parse("10.0.0.0/8")) is None

    def test_prefix_visibility(self):
        snapshot = RIBSnapshot.from_records(
            [
                rib_record("rrc00", 1, [announce("10.0.0.0/8", 1, 9)]),
                rib_record("rrc00", 2, [announce("10.0.0.0/8", 2, 9)]),
                rib_record("rrc01", 3, [announce("10.0.0.0/8", 3, 9),
                                        announce("11.0.0.0/8", 3, 9)]),
            ]
        )
        visibility = snapshot.prefix_visibility()
        collectors, peer_ases = visibility[Prefix.parse("10.0.0.0/8")]
        assert collectors == {"rrc00", "rrc01"}
        assert peer_ases == {1, 2, 3}
        collectors11, peers11 = visibility[Prefix.parse("11.0.0.0/8")]
        assert collectors11 == {"rrc01"} and peers11 == {3}

    def test_restrict_peers(self):
        snapshot = RIBSnapshot.from_records(
            [
                rib_record("rrc00", 1, [announce("10.0.0.0/8", 1, 9)]),
                rib_record("rrc00", 2, [announce("10.0.0.0/8", 2, 9)]),
            ]
        )
        keep = [("rrc00", 1, "10.0.1.1")]
        restricted = snapshot.restrict_peers(keep)
        assert restricted.peers() == keep
        # Original untouched.
        assert len(snapshot.peers()) == 2

    def test_restrict_family(self):
        snapshot = RIBSnapshot.from_records(
            [
                rib_record(
                    "rrc00", 1,
                    [announce("10.0.0.0/8", 1, 9), announce("2001:db8::/32", 1, 9)],
                )
            ]
        )
        v6_only = snapshot.restrict_family(AF_INET6)
        peer = ("rrc00", 1, "10.0.1.1")
        assert v6_only.path(peer, Prefix.parse("2001:db8::/32")) is not None
        assert v6_only.path(peer, Prefix.parse("10.0.0.0/8")) is None

    def test_prefix_count_by_peer(self):
        snapshot = RIBSnapshot.from_records(
            [
                rib_record("rrc00", 1, [announce("10.0.0.0/8", 1, 9),
                                        announce("11.0.0.0/8", 1, 9)]),
                rib_record("rrc00", 2, [announce("10.0.0.0/8", 2, 9)]),
            ]
        )
        counts = snapshot.prefix_count_by_peer()
        assert counts[("rrc00", 1, "10.0.1.1")] == 2
        assert counts[("rrc00", 2, "10.0.2.1")] == 1
