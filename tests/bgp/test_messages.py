"""Tests for route records and elements."""

import pytest

from repro.bgp.attributes import PathAttributes
from repro.bgp.messages import (
    ElementType,
    RouteElement,
    RouteRecord,
    merge_records_by_peer,
)
from repro.net.aspath import ASPath
from repro.net.prefix import Prefix


def announcement(prefix_text, asns=(1, 2)):
    return RouteElement(
        ElementType.ANNOUNCEMENT,
        Prefix.parse(prefix_text),
        PathAttributes(ASPath.from_asns(list(asns))),
    )


def record(elements, peer_asn=65001, timestamp=1000, record_type="update",
           collector="rrc00", warning=""):
    return RouteRecord(
        record_type,
        "ris",
        collector,
        peer_asn,
        "10.0.0.1",
        timestamp,
        elements,
        corrupt_warning=warning,
    )


class TestRouteElement:
    def test_withdrawal_needs_no_attributes(self):
        element = RouteElement(ElementType.WITHDRAWAL, Prefix.parse("10.0.0.0/8"))
        assert element.is_withdrawal
        assert element.as_path is None

    def test_announcement_requires_attributes(self):
        with pytest.raises(ValueError):
            RouteElement(ElementType.ANNOUNCEMENT, Prefix.parse("10.0.0.0/8"))

    def test_accepts_string_type(self):
        element = RouteElement("W", Prefix.parse("10.0.0.0/8"))
        assert element.element_type is ElementType.WITHDRAWAL


class TestRouteRecord:
    def test_prefix_sets(self):
        rec = record(
            [
                announcement("10.0.0.0/8"),
                announcement("11.0.0.0/8"),
                RouteElement(ElementType.WITHDRAWAL, Prefix.parse("12.0.0.0/8")),
            ]
        )
        assert rec.prefixes() == {
            Prefix.parse("10.0.0.0/8"),
            Prefix.parse("11.0.0.0/8"),
            Prefix.parse("12.0.0.0/8"),
        }
        assert rec.announced_prefixes() == {
            Prefix.parse("10.0.0.0/8"),
            Prefix.parse("11.0.0.0/8"),
        }

    def test_peer_id(self):
        rec = record([announcement("10.0.0.0/8")])
        assert rec.peer_id == ("rrc00", 65001, "10.0.0.1")

    def test_rejects_unknown_type(self):
        with pytest.raises(ValueError):
            record([announcement("10.0.0.0/8")], record_type="bogus")

    def test_corrupt_flag(self):
        rec = record([announcement("10.0.0.0/8")], warning="Duplicate Path Attribute")
        assert rec.is_corrupt

    def test_iteration_and_len(self):
        rec = record([announcement("10.0.0.0/8"), announcement("11.0.0.0/8")])
        assert len(rec) == 2
        assert all(isinstance(e, RouteElement) for e in rec)


class TestMergeRecords:
    def test_merges_same_peer_same_timestamp(self):
        merged = merge_records_by_peer(
            [
                record([announcement("10.0.0.0/8")], timestamp=5),
                record([announcement("11.0.0.0/8")], timestamp=5),
            ]
        )
        assert len(merged) == 1
        assert len(merged[0]) == 2

    def test_keeps_different_timestamps_apart(self):
        merged = merge_records_by_peer(
            [
                record([announcement("10.0.0.0/8")], timestamp=5),
                record([announcement("11.0.0.0/8")], timestamp=6),
            ]
        )
        assert len(merged) == 2

    def test_keeps_different_peers_apart(self):
        merged = merge_records_by_peer(
            [
                record([announcement("10.0.0.0/8")], peer_asn=1),
                record([announcement("11.0.0.0/8")], peer_asn=2),
            ]
        )
        assert len(merged) == 2

    def test_propagates_corruption(self):
        merged = merge_records_by_peer(
            [
                record([announcement("10.0.0.0/8")], warning="bad"),
                record([announcement("11.0.0.0/8")]),
            ]
        )
        assert merged[0].is_corrupt
