"""Tests for the BGP decision process."""


from repro.bgp.attributes import Origin, PathAttributes
from repro.bgp.decision import CandidateRoute, best_route, rank_routes
from repro.net.aspath import ASPath


def candidate(neighbor, asns, local_pref=100, med=0, origin=Origin.IGP):
    return CandidateRoute(
        neighbor_asn=neighbor,
        attributes=PathAttributes(
            ASPath.from_asns(list(asns)), med=med,
            local_pref=local_pref, origin=origin,
        ),
    )


class TestSelection:
    def test_highest_local_pref_wins(self):
        routes = [
            candidate(1, [1, 9], local_pref=100),
            candidate(2, [2, 3, 4, 9], local_pref=200),
        ]
        assert best_route(routes).neighbor_asn == 2

    def test_shortest_path_wins(self):
        routes = [candidate(1, [1, 5, 9]), candidate(2, [2, 9])]
        assert best_route(routes).neighbor_asn == 2

    def test_as_set_counts_one_hop(self):
        short_with_set = CandidateRoute(
            neighbor_asn=1,
            attributes=PathAttributes(ASPath.parse("1 {2,3,4} 9")),
        )
        longer = candidate(2, [2, 5, 6, 9])
        assert best_route([short_with_set, longer]).neighbor_asn == 1

    def test_origin_preference(self):
        routes = [
            candidate(1, [1, 9], origin=Origin.INCOMPLETE),
            candidate(2, [2, 9], origin=Origin.IGP),
        ]
        assert best_route(routes).neighbor_asn == 2

    def test_med_within_same_neighbor_as(self):
        routes = [
            candidate(1, [7, 9], med=20),
            candidate(2, [7, 9], med=10),
        ]
        assert best_route(routes).neighbor_asn == 2

    def test_med_not_compared_across_neighbor_ases_by_default(self):
        # Different first AS: MED ignored, falls through to neighbor ASN.
        routes = [
            candidate(1, [7, 9], med=50),
            candidate(2, [8, 9], med=1),
        ]
        assert best_route(routes).neighbor_asn == 1

    def test_always_compare_med(self):
        routes = [
            candidate(1, [7, 9], med=50),
            candidate(2, [8, 9], med=1),
        ]
        assert best_route(routes, always_compare_med=True).neighbor_asn == 2

    def test_neighbor_asn_tiebreak(self):
        routes = [candidate(5, [5, 9]), candidate(3, [3, 9])]
        assert best_route(routes).neighbor_asn == 3

    def test_loop_rejection(self):
        routes = [candidate(1, [1, 42, 9]), candidate(2, [2, 5, 6, 9])]
        assert best_route(routes, local_asn=42).neighbor_asn == 2

    def test_all_looped_returns_none(self):
        routes = [candidate(1, [1, 42, 9])]
        assert best_route(routes, local_asn=42) is None

    def test_empty(self):
        assert best_route([]) is None


class TestRanking:
    def test_rank_orders_by_preference(self):
        routes = [
            candidate(1, [1, 5, 9]),
            candidate(2, [2, 9], local_pref=200),
            candidate(3, [3, 9]),
        ]
        ranked = rank_routes(routes)
        assert [route.neighbor_asn for route in ranked] == [2, 3, 1]

    def test_rank_drops_loops(self):
        routes = [candidate(1, [1, 42, 9]), candidate(2, [2, 9])]
        ranked = rank_routes(routes, local_asn=42)
        assert [route.neighbor_asn for route in ranked] == [2]
