"""Tests for repro.bgp.attributes."""

import pytest

from repro.bgp.attributes import Community, Origin, PathAttributes
from repro.net.aspath import ASPath


class TestCommunity:
    def test_parse_and_format(self):
        community = Community.parse("3257:2990")
        assert community.asn == 3257 and community.value == 2990
        assert str(community) == "3257:2990"

    def test_equality_and_hash(self):
        assert Community(1, 2) == Community(1, 2)
        assert hash(Community(1, 2)) == hash(Community(1, 2))
        assert Community(1, 2) != Community(1, 3)

    def test_ordering(self):
        assert Community(1, 2) < Community(1, 3) < Community(2, 0)

    @pytest.mark.parametrize("asn,value", [(-1, 0), (0, -1), (0, 1 << 16), (1 << 33, 0)])
    def test_rejects_out_of_range(self, asn, value):
        with pytest.raises(ValueError):
            Community(asn, value)

    def test_immutable(self):
        community = Community(1, 2)
        with pytest.raises(AttributeError):
            community.asn = 5


class TestPathAttributes:
    def test_defaults(self):
        attributes = PathAttributes(ASPath.from_asns([1, 2]))
        assert attributes.med == 0
        assert attributes.local_pref == 100
        assert attributes.origin == Origin.IGP
        assert attributes.communities == frozenset()

    def test_origin_asn(self):
        attributes = PathAttributes(ASPath.from_asns([1, 2, 3]))
        assert attributes.origin_asn == 3

    def test_with_path_preserves_rest(self):
        attributes = PathAttributes(
            ASPath.from_asns([1]), communities=[Community(1, 2)], med=5
        )
        updated = attributes.with_path(ASPath.from_asns([9, 1]))
        assert updated.as_path.peer == 9
        assert updated.med == 5
        assert Community(1, 2) in updated.communities

    def test_with_communities(self):
        attributes = PathAttributes(ASPath.from_asns([1]))
        updated = attributes.with_communities([Community(3, 4)])
        assert updated.community_values() == ("3:4",)

    def test_equality_includes_communities(self):
        base = PathAttributes(ASPath.from_asns([1, 2]))
        tagged = PathAttributes(ASPath.from_asns([1, 2]), communities=[Community(1, 1)])
        assert base != tagged

    def test_hashable(self):
        a = PathAttributes(ASPath.from_asns([1, 2]))
        b = PathAttributes(ASPath.from_asns([1, 2]))
        assert hash(a) == hash(b)
        assert len({a, b}) == 1

    def test_immutable(self):
        attributes = PathAttributes(ASPath.from_asns([1]))
        with pytest.raises(AttributeError):
            attributes.med = 10
