"""Tests for stream filter combinators."""

from repro.bgp.attributes import PathAttributes
from repro.bgp.messages import ElementType, RouteElement, RouteRecord
from repro.net.aspath import ASPath
from repro.net.prefix import Prefix
from repro.stream.filters import (
    apply,
    by_collector,
    by_peer_asn,
    by_prefix,
    by_project,
    by_time,
    by_type,
    healthy,
)


def record(collector="rrc00", project="ris", peer=1, timestamp=100,
           prefixes=("10.0.0.0/8",), record_type="update", warning=""):
    elements = [
        RouteElement(
            ElementType.ANNOUNCEMENT if record_type == "update" else ElementType.RIB,
            Prefix.parse(text),
            PathAttributes(ASPath.from_asns([peer, 9])),
        )
        for text in prefixes
    ]
    return RouteRecord(record_type, project, collector, peer, "10.0.0.1",
                       timestamp, elements, corrupt_warning=warning)


SAMPLE = [
    record("rrc00", "ris", 1, 100, ("10.0.0.0/8",)),
    record("rrc01", "ris", 2, 200, ("11.0.0.0/8",)),
    record("route-views2", "routeviews", 3, 300, ("10.5.0.0/16",), warning="bad"),
]


class TestAtoms:
    def test_by_collector(self):
        kept = list(apply(SAMPLE, by_collector("rrc00", "rrc01")))
        assert len(kept) == 2

    def test_by_project(self):
        kept = list(apply(SAMPLE, by_project("routeviews")))
        assert [r.collector for r in kept] == ["route-views2"]

    def test_by_peer_asn(self):
        kept = list(apply(SAMPLE, by_peer_asn(2, 3)))
        assert {r.peer_asn for r in kept} == {2, 3}

    def test_by_type(self):
        mixed = SAMPLE + [record(record_type="rib")]
        assert len(list(apply(mixed, by_type("rib")))) == 1

    def test_by_time(self):
        kept = list(apply(SAMPLE, by_time(150, 250)))
        assert [r.timestamp for r in kept] == [200]

    def test_by_prefix_covering(self):
        kept = list(apply(SAMPLE, by_prefix("10.0.0.0/8")))
        assert len(kept) == 2  # the /8 itself and the /16 inside it

    def test_healthy(self):
        kept = list(apply(SAMPLE, healthy()))
        assert all(not r.is_corrupt for r in kept)
        assert len(kept) == 2


class TestCombinators:
    def test_and(self):
        predicate = by_project("ris") & by_time(150, 300)
        kept = list(apply(SAMPLE, predicate))
        assert [r.collector for r in kept] == ["rrc01"]

    def test_or(self):
        predicate = by_collector("rrc00") | by_peer_asn(3)
        kept = list(apply(SAMPLE, predicate))
        assert len(kept) == 2

    def test_not(self):
        kept = list(apply(SAMPLE, ~by_project("ris")))
        assert [r.project for r in kept] == ["routeviews"]

    def test_description_composes(self):
        predicate = ~(by_project("ris") & by_collector("rrc00"))
        assert "ris" in predicate.description
        assert predicate.description.startswith("(not")

    def test_lazy(self):
        def generator():
            yield SAMPLE[0]
            raise RuntimeError("must not be reached")

        stream = apply(generator(), by_collector("rrc00"))
        assert next(stream).collector == "rrc00"
