"""Tests for the BGPStream-like query API."""

import pytest

from repro.net.prefix import AF_INET6
from repro.simulation.scenario import SimulatedInternet
from repro.stream.archive import RecordArchive
from repro.stream.bgpstream import BGPStream
from tests.conftest import TEST_WORLD


class TestOverSimulator:
    def test_rib_stream(self, internet_2004):
        stream = BGPStream(
            internet_2004, record_type="rib", from_time="2004-01-15 08:00"
        )
        records = list(stream.records())
        assert records and all(r.record_type == "rib" for r in records)

    def test_update_stream_requires_bounds(self, internet_2004):
        stream = BGPStream(internet_2004, record_type="update",
                           from_time="2004-01-15 08:00")
        with pytest.raises(ValueError):
            list(stream.records())

    def test_update_stream(self):
        sim = SimulatedInternet(TEST_WORLD, start="2004-01-15 08:00")
        stream = BGPStream(
            sim,
            record_type="update",
            from_time="2004-01-15 08:00",
            until_time="2004-01-15 12:00",
        )
        records = list(stream)
        assert all(r.record_type == "update" for r in records)

    def test_collector_filter(self, internet_2004):
        collectors = internet_2004.world.layout.collectors
        chosen = collectors[0][1]
        stream = BGPStream(
            internet_2004, from_time="2004-01-15 08:00", collectors=[chosen]
        )
        records = list(stream.records())
        assert records
        assert all(r.collector == chosen for r in records)

    def test_elements_iterator(self, internet_2004):
        stream = BGPStream(internet_2004, from_time="2004-01-15 08:00")
        pair = next(iter(stream.elements()))
        record, element = pair
        assert element in record.elements

    def test_family_selection(self):
        sim = SimulatedInternet(TEST_WORLD, start="2024-10-15 08:00")
        stream = BGPStream(sim, from_time="2024-10-15 08:00", family=AF_INET6)
        for record in list(stream)[:5]:
            for element in record.elements:
                assert element.prefix.family == AF_INET6


class TestOverArchive:
    def test_archive_source(self, tmp_path, records_2004):
        archive = RecordArchive(tmp_path)
        archive.write_dump(records_2004[:20], dump_timestamp=records_2004[0].timestamp)
        stream = BGPStream(archive, record_type="rib")
        assert len(list(stream.records())) == sum(1 for _ in records_2004[:20])

    def test_rejects_unknown_source(self):
        stream = BGPStream(object(), from_time=0)
        with pytest.raises(TypeError):
            list(stream.records())

    def test_rejects_unknown_record_type(self, tmp_path):
        with pytest.raises(ValueError):
            BGPStream(RecordArchive(tmp_path), record_type="nonsense")
