"""Replay edge cases: the stream shapes real BGP feeds actually produce.

Collectors interleave dumps from many peers, so update timestamps are
only approximately ordered — records regularly arrive after a later
timestamp has already been seen (out-of-order across dump boundaries).
Peers also withdraw prefixes the collector never saw announced, and
long-running indexes get their universe narrowed mid-flight.  None of
these may change results or crash the incremental machinery.
"""

from repro.core.atoms import compute_atoms
from repro.core.incremental import AtomIndex
from repro.net.prefix import Prefix
from repro.stream.live import LiveConfig, LivePipeline

from tests.stream.test_live import (
    PEERS,
    W,
    assert_atoms_equal,
    cold_atoms,
    full_stream,
    prime_records,
    update_record,
)


def out_of_order_stream():
    """Updates whose timestamps regress after a boundary was crossed.

    The record at t=205 opens window 2 (closing window 1 at 200); the
    two that follow carry t=195 and t=120 — stragglers from a slower
    dump file of the same collector run.  They belong to window 2 by
    *arrival*, which is the only consistent choice for a pipeline that
    already refreshed the 200 boundary.
    """
    return prime_records() + [
        update_record(PEERS[0], 110, announced=[("10.0.2.0/24", "1 7 9")]),
        update_record(PEERS[1], 205, announced=[("10.0.3.0/24", "2 7 8")]),
        update_record(PEERS[2], 195, announced=[("10.0.4.0/24", "3 7 8")]),
        update_record(PEERS[0], 120, withdrawn=["10.0.5.0/24"]),
        update_record(PEERS[1], 290, announced=[("10.0.6.0/24", "2 7 8")]),
        update_record(PEERS[2], 310, announced=[("10.0.1.0/24", "3 7 9")]),
    ]


class TestOutOfOrderTimestamps:
    def test_late_records_fold_into_the_open_window(self):
        run = LivePipeline(
            out_of_order_stream(), LiveConfig(window_seconds=W)
        ).run()
        assert [w.index for w in run.windows] == [1, 2, 3]
        assert run.windows[0].late_records == 0
        # t=195 and t=120 arrived while window 2 ([200, 300)) was open
        assert run.windows[1].late_records == 2
        assert run.windows[1].records == 4

    def test_parity_holds_despite_reordering(self):
        stream = out_of_order_stream()
        run = LivePipeline(
            stream, LiveConfig(window_seconds=W, shards=2)
        ).run()
        assert run.parity_checks == len(run.windows)
        assert_atoms_equal(run.atoms, cold_atoms(stream))

    def test_resume_replays_by_position_not_timestamp(self, tmp_path):
        """Killing mid-run around a timestamp regression must not skip
        or double-apply the stragglers: position-based resume replays
        exactly the unconsumed suffix."""
        stream = out_of_order_stream()
        reference = LivePipeline(stream, LiveConfig(window_seconds=W)).run()

        killed = LivePipeline(stream, LiveConfig(
            window_seconds=W, checkpoint_dir=tmp_path / "c", max_windows=1
        )).run()
        assert killed.stopped_early
        resumed = LivePipeline(stream, LiveConfig(
            window_seconds=W, checkpoint_dir=tmp_path / "c"
        )).run()
        assert resumed.resumed
        combined = killed.windows + resumed.windows
        assert [w.as_dict(deterministic_only=True) for w in combined] == [
            w.as_dict(deterministic_only=True) for w in reference.windows
        ]
        assert_atoms_equal(resumed.atoms, reference.atoms)


class TestWithdrawBeforeAnnounce:
    def test_unseen_prefix_withdrawal_is_a_noop(self):
        """A withdrawal for a prefix the collector never saw announced
        (common right after a session reset) must not perturb atoms."""
        stream = full_stream()
        stream.insert(3, update_record(
            PEERS[2], 105, withdrawn=["198.51.100.0/24"]
        ))
        stream.insert(6, update_record(
            PEERS[1], 160, withdrawn=["198.51.100.0/24", "10.0.9.0/24"]
        ))
        run = LivePipeline(
            stream, LiveConfig(window_seconds=W, shards=3)
        ).run()
        assert run.parity_checks == len(run.windows)
        assert_atoms_equal(run.atoms, cold_atoms(full_stream()))

    def test_withdraw_from_unknown_peer_table_at_index_level(self):
        """RIBSnapshot.withdraw for a peer table that does not exist yet
        still fires the mutation hook; the refresh must cope."""
        from repro.bgp.rib import RIBSnapshot

        snapshot = RIBSnapshot()
        snapshot.apply_record(prime_records()[0])
        index = AtomIndex(snapshot, vantage_points=[PEERS[0], PEERS[1]])
        snapshot.withdraw(PEERS[1], Prefix.parse("10.0.1.0/24"))
        index.refresh()
        expected = compute_atoms(
            snapshot, vantage_points=[PEERS[0], PEERS[1]]
        )
        assert_atoms_equal(index.atoms(), expected)


class TestUniverseShrink:
    def _built_index(self):
        from repro.bgp.rib import RIBSnapshot

        snapshot = RIBSnapshot()
        for record in prime_records():
            snapshot.apply_record(record)
        universe = {
            Prefix.parse(f"10.0.{i}.0/24") for i in range(1, 7)
        }
        index = AtomIndex(
            snapshot, vantage_points=list(PEERS), prefixes=universe
        )
        return snapshot, universe, index

    def test_sync_to_after_set_universe_shrink(self):
        """Narrowing the universe and syncing to a churned snapshot in
        one step: dropped prefixes leave the partition, surviving ones
        track the target exactly."""
        from repro.bgp.rib import RIBSnapshot

        snapshot, universe, index = self._built_index()
        shrunk = {p for p in universe if p != Prefix.parse("10.0.2.0/24")}

        target = RIBSnapshot()
        for record in prime_records():
            target.apply_record(record)
        target.apply_record(update_record(
            PEERS[0], 300, announced=[("10.0.3.0/24", "1 7 8")]
        ))
        target.apply_record(update_record(
            PEERS[1], 310, withdrawn=["10.0.6.0/24"]
        ))

        index.sync_to(target, prefixes=shrunk)
        expected = compute_atoms(
            target, vantage_points=list(PEERS), prefixes=shrunk
        )
        assert_atoms_equal(index.atoms(), expected)
        dropped = Prefix.parse("10.0.2.0/24")
        assert all(
            dropped not in atom.prefixes for atom in index.atoms().atoms
        )

    def test_shrink_then_regrow_restores_the_prefix(self):
        snapshot, universe, index = self._built_index()
        shrunk = {p for p in universe if p != Prefix.parse("10.0.2.0/24")}
        index.set_universe(shrunk)
        assert_atoms_equal(
            index.atoms(),
            compute_atoms(
                snapshot, vantage_points=list(PEERS), prefixes=shrunk
            ),
        )
        index.set_universe(universe)
        assert_atoms_equal(
            index.atoms(),
            compute_atoms(
                snapshot, vantage_points=list(PEERS), prefixes=universe
            ),
        )

    def test_shrink_discards_pending_dirty_work(self):
        snapshot, universe, index = self._built_index()
        index.refresh()
        # dirty a prefix, then shrink it out of the universe before
        # refreshing: the pending recomputation must be dropped
        snapshot.announce(
            PEERS[0], Prefix.parse("10.0.2.0/24"),
            prime_records()[0].elements[0].attributes,
        )
        assert index.dirty_count == 1
        shrunk = {p for p in universe if p != Prefix.parse("10.0.2.0/24")}
        index.set_universe(shrunk)
        assert index.dirty_count == 0
        assert index.refresh() == 0
