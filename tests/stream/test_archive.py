"""Tests for the on-disk record archive."""

import pytest

from repro.bgp.attributes import PathAttributes
from repro.bgp.messages import ElementType, RouteElement, RouteRecord
from repro.net.aspath import ASPath
from repro.net.prefix import Prefix
from repro.stream.archive import RecordArchive


def make_record(collector="rrc00", project="ris", peer_asn=1, timestamp=1000,
                record_type="rib"):
    return RouteRecord(
        record_type, project, collector, peer_asn, "10.0.0.1", timestamp,
        [
            RouteElement(
                ElementType.RIB if record_type == "rib" else ElementType.ANNOUNCEMENT,
                Prefix.parse("10.0.0.0/8"),
                PathAttributes(ASPath.from_asns([peer_asn, 9])),
            )
        ],
    )


class TestArchive:
    def test_write_and_read(self, tmp_path):
        archive = RecordArchive(tmp_path)
        written = archive.write_dump([make_record(), make_record(peer_asn=2)])
        assert len(written) == 1  # same collector/type -> one file
        records = list(archive.records())
        assert len(records) == 2
        assert {r.peer_asn for r in records} == {1, 2}

    def test_layout_is_self_describing(self, tmp_path):
        archive = RecordArchive(tmp_path)
        archive.write_dump([make_record(timestamp=1_600_000_000)])
        dumps = archive.dumps()
        assert len(dumps) == 1
        project, collector, rtype, stamp, path = dumps[0]
        assert (project, collector, rtype, stamp) == ("ris", "rrc00", "rib", 1_600_000_000)
        assert "ris/rrc00/rib/2020/09" in str(path)

    def test_groups_by_collector(self, tmp_path):
        archive = RecordArchive(tmp_path)
        written = archive.write_dump(
            [make_record("rrc00"), make_record("rrc01")]
        )
        assert len(written) == 2

    def test_filters(self, tmp_path):
        archive = RecordArchive(tmp_path)
        archive.write_dump([make_record("rrc00", "ris")])
        archive.write_dump([make_record("route-views2", "routeviews")])
        ris_only = list(archive.records(project="ris"))
        assert len(ris_only) == 1 and ris_only[0].project == "ris"

    def test_time_filters(self, tmp_path):
        archive = RecordArchive(tmp_path)
        archive.write_dump([make_record(timestamp=100)], dump_timestamp=100)
        archive.write_dump([make_record(timestamp=200)], dump_timestamp=200)
        assert len(list(archive.records(from_time=150))) == 1
        assert len(list(archive.records(until_time=150))) == 1
        assert len(list(archive.records(from_time=50, until_time=250))) == 2

    def test_from_time_scans_dumps_stamped_earlier(self, tmp_path):
        """A dump is stamped with its *first* record's timestamp, so a
        dump starting before ``from_time`` can still hold in-range
        records — they must not be skipped wholesale (regression)."""
        archive = RecordArchive(tmp_path)
        spanning = [
            make_record(timestamp=100),
            make_record(peer_asn=2, timestamp=180),
            make_record(peer_asn=3, timestamp=260),
        ]
        archive.write_dump(spanning, dump_timestamp=100)
        in_range = list(archive.records(from_time=150))
        assert [r.timestamp for r in in_range] == [180, 260]
        # until_time still prunes at dump level: nothing stamped after
        # the bound is opened, and per-record filtering holds inside.
        assert [r.timestamp for r in archive.records(until_time=150)] == [100]

    def test_dumps_skips_stray_files(self, tmp_path):
        archive = RecordArchive(tmp_path)
        archive.write_dump([make_record(timestamp=100)], dump_timestamp=100)
        type_dir = next(tmp_path.rglob("100.jsonl.gz")).parent
        (type_dir / "README.jsonl.gz").write_bytes(b"not a dump")
        (type_dir / "notes.txt").write_text("ignore me")
        dumps = archive.dumps()
        assert [stamp for _, _, _, stamp, _ in dumps] == [100]
        assert len(list(archive.records())) == 1

    def test_dumps_sweeps_orphaned_tmp_files(self, tmp_path):
        archive = RecordArchive(tmp_path)
        archive.write_dump([make_record(timestamp=100)], dump_timestamp=100)
        type_dir = next(tmp_path.rglob("100.jsonl.gz")).parent
        # A tmp file from a pid that no longer exists: orphaned, swept.
        dead = type_dir / "200.jsonl.gz.tmp999999999"
        dead.write_bytes(b"partial")
        # A live writer's tmp file (our own pid): must be left alone.
        import os

        live = type_dir / f"300.jsonl.gz.tmp{os.getpid()}"
        live.write_bytes(b"in flight")
        archive.dumps()
        assert not dead.exists()
        assert live.exists()
        live.unlink()

    def test_record_type_separation(self, tmp_path):
        archive = RecordArchive(tmp_path)
        archive.write_dump(
            [make_record(record_type="rib"), make_record(record_type="update")]
        )
        assert len(list(archive.records(record_type="rib"))) == 1
        assert len(list(archive.records(record_type="update"))) == 1


class TestCrashSafety:
    def test_failed_write_leaves_no_partial_dump(self, tmp_path, monkeypatch):
        """A serializer crash mid-dump must not leave a truncated file
        that a later read would silently ingest."""
        import repro.stream.archive as archive_module

        archive = RecordArchive(tmp_path)
        calls = {"n": 0}
        real = archive_module.record_to_json

        def exploding(record):
            calls["n"] += 1
            if calls["n"] >= 2:
                raise RuntimeError("disk full")
            return real(record)

        monkeypatch.setattr(archive_module, "record_to_json", exploding)
        with pytest.raises(RuntimeError):
            archive.write_dump([make_record(peer_asn=1), make_record(peer_asn=2)])

        assert list(tmp_path.rglob("*.jsonl.gz")) == []  # no truncated dump
        assert list(tmp_path.rglob("*.tmp*")) == []  # no leftover temp file
        assert list(archive.records()) == []

    def test_failed_write_preserves_earlier_dumps(self, tmp_path, monkeypatch):
        import repro.stream.archive as archive_module

        archive = RecordArchive(tmp_path)
        archive.write_dump([make_record(timestamp=100)], dump_timestamp=100)

        monkeypatch.setattr(
            archive_module,
            "record_to_json",
            lambda record: (_ for _ in ()).throw(RuntimeError("boom")),
        )
        with pytest.raises(RuntimeError):
            archive.write_dump([make_record(timestamp=200)], dump_timestamp=200)

        survivors = list(archive.records())
        assert len(survivors) == 1 and survivors[0].timestamp == 100

    def test_rewrite_is_atomic_replace(self, tmp_path):
        """Re-dumping the same instant swaps the file in one step."""
        archive = RecordArchive(tmp_path)
        archive.write_dump([make_record(peer_asn=1)], dump_timestamp=100)
        archive.write_dump(
            [make_record(peer_asn=1), make_record(peer_asn=2)], dump_timestamp=100
        )
        records = list(archive.records())
        assert {r.peer_asn for r in records} == {1, 2}
        assert list(tmp_path.rglob("*.tmp*")) == []


class TestIntegrationWithSimulator:
    def test_snapshot_archive_roundtrip(self, tmp_path, records_2004):
        archive = RecordArchive(tmp_path)
        sample = records_2004[:10]
        archive.write_dump(sample, dump_timestamp=sample[0].timestamp)
        restored = list(archive.records())
        assert len(restored) == len(sample)
        originals = {(r.peer_id, tuple(r.elements)) for r in sample}
        recovered = {(r.peer_id, tuple(r.elements)) for r in restored}
        assert originals == recovered
