"""Tests for the MRT (RFC 6396) reader/writer."""

import io

import pytest

from repro.bgp.attributes import Community, PathAttributes
from repro.net.aspath import ASPath
from repro.net.prefix import AF_INET6, Prefix
from repro.stream.mrt import (
    MRTError,
    MRTWriter,
    _decode_nlri,
    _encode_nlri,
    read_mrt,
)


def attrs(asns, communities=(), med=0):
    return PathAttributes(
        ASPath.from_asns(list(asns)), communities=communities, med=med
    )


def roundtrip(write):
    buffer = io.BytesIO()
    writer = MRTWriter(buffer)
    write(writer)
    buffer.seek(0)
    return list(read_mrt(buffer, project="ris", collector="rrc00"))


class TestNlriCodec:
    @pytest.mark.parametrize(
        "text", ["0.0.0.0/0", "10.0.0.0/8", "192.0.2.128/25", "203.0.113.7/32"]
    )
    def test_v4_roundtrip(self, text):
        prefix = Prefix.parse(text)
        decoded, offset = _decode_nlri(_encode_nlri(prefix), 0, prefix.family)
        assert decoded == prefix
        assert offset == len(_encode_nlri(prefix))

    @pytest.mark.parametrize("text", ["2001:db8::/32", "::/0", "2001:db8::1/128"])
    def test_v6_roundtrip(self, text):
        prefix = Prefix.parse(text)
        decoded, _ = _decode_nlri(_encode_nlri(prefix), 0, prefix.family)
        assert decoded == prefix

    def test_truncated_rejected(self):
        with pytest.raises(MRTError):
            _decode_nlri(bytes([24, 10]), 0, 4)  # /24 needs 3 bytes


class TestTableDumpV2:
    def test_rib_roundtrip(self):
        path_a = attrs([65001, 3257, 65010], communities=[Community(3257, 2990)])
        path_b = attrs([65002, 1299, 65010], med=50)

        def write(writer):
            writer.write_peer_index(
                [(65001, "10.0.0.1"), (65002, "10.0.0.2")], timestamp=100
            )
            writer.write_rib_entry(
                Prefix.parse("192.0.2.0/24"),
                [(65001, "10.0.0.1", path_a), (65002, "10.0.0.2", path_b)],
                timestamp=100,
            )

        records = roundtrip(write)
        assert len(records) == 2
        first, second = records
        assert first.record_type == "rib"
        assert first.peer_asn == 65001 and first.peer_address == "10.0.0.1"
        element = first.elements[0]
        assert element.prefix == Prefix.parse("192.0.2.0/24")
        assert element.attributes.as_path == ASPath.from_asns([65001, 3257, 65010])
        assert Community(3257, 2990) in element.attributes.communities
        assert second.elements[0].attributes.med == 50

    def test_v6_rib(self):
        def write(writer):
            writer.write_peer_index([(65001, "10.0.0.1")])
            writer.write_rib_entry(
                Prefix.parse("2001:db8::/32"),
                [(65001, "10.0.0.1", attrs([65001, 9]))],
            )

        records = roundtrip(write)
        assert records[0].elements[0].prefix.family == AF_INET6

    def test_rib_before_index_fails(self):
        buffer = io.BytesIO()
        writer = MRTWriter(buffer)
        writer.write_peer_index([(65001, "10.0.0.1")])
        writer.write_rib_entry(
            Prefix.parse("10.0.0.0/8"), [(65001, "10.0.0.1", attrs([65001, 9]))]
        )
        data = buffer.getvalue()
        # Drop the index record: reader must reject the dangling entry.
        header = data[:12]
        import struct

        length = struct.unpack(">IHHI", header)[3]
        stripped = io.BytesIO(data[12 + length:])
        with pytest.raises(MRTError):
            list(read_mrt(stripped))


class TestBgp4mp:
    def test_update_roundtrip(self):
        bundle = attrs([65001, 2, 9], communities=[Community(2, 7)])

        def write(writer):
            writer.write_update(
                65001,
                "10.0.0.1",
                announced=[
                    (Prefix.parse("10.1.0.0/16"), bundle),
                    (Prefix.parse("10.2.0.0/16"), bundle),
                ],
                withdrawn=[Prefix.parse("10.3.0.0/16")],
                timestamp=1234,
            )

        records = roundtrip(write)
        assert len(records) == 1
        record = records[0]
        assert record.record_type == "update"
        assert record.timestamp == 1234
        announced = record.announced_prefixes()
        assert announced == {Prefix.parse("10.1.0.0/16"), Prefix.parse("10.2.0.0/16")}
        withdrawals = [e for e in record.elements if e.is_withdrawal]
        assert [e.prefix for e in withdrawals] == [Prefix.parse("10.3.0.0/16")]
        kept = [e for e in record.elements if not e.is_withdrawal][0]
        assert kept.attributes.as_path == bundle.as_path

    def test_v6_update_uses_mp_reach(self):
        bundle = attrs([65001, 9])

        def write(writer):
            writer.write_update(
                65001,
                "10.0.0.1",
                announced=[(Prefix.parse("2001:db8::/32"), bundle)],
                withdrawn=[Prefix.parse("2001:db9::/32")],
            )

        records = roundtrip(write)
        prefixes = {str(e.prefix) for e in records[0].elements}
        assert prefixes == {"2001:db8::/32", "2001:db9::/32"}

    def test_pure_withdrawal(self):
        def write(writer):
            writer.write_update(
                65001, "10.0.0.1", announced=[],
                withdrawn=[Prefix.parse("10.0.0.0/8")],
            )

        records = roundtrip(write)
        assert records[0].elements[0].is_withdrawal


class TestRobustness:
    def test_unknown_type_flagged_not_dropped(self):
        import struct

        buffer = io.BytesIO()
        buffer.write(struct.pack(">IHHI", 7, 99, 1, 0))
        buffer.seek(0)
        records = list(read_mrt(buffer))
        assert len(records) == 1
        assert records[0].is_corrupt
        assert "unknown MRT record type 99/1" in records[0].corrupt_warning

    def test_truncated_body(self):
        import struct

        buffer = io.BytesIO(struct.pack(">IHHI", 7, 13, 2, 100) + b"\x00" * 10)
        with pytest.raises(MRTError):
            list(read_mrt(buffer))

    def test_empty_stream(self):
        assert list(read_mrt(io.BytesIO())) == []


class TestPipelineIntegration:
    def test_mrt_feeds_atom_computation(self):
        """MRT records drive the sanitize -> atoms pipeline directly."""
        from repro.core.atoms import compute_atoms
        from repro.bgp.rib import RIBSnapshot

        def write(writer):
            writer.write_peer_index([(11, "10.0.0.1"), (12, "10.0.0.2")])
            for text in ("10.1.0.0/16", "10.2.0.0/16"):
                writer.write_rib_entry(
                    Prefix.parse(text),
                    [
                        (11, "10.0.0.1", attrs([11, 7, 9])),
                        (12, "10.0.0.2", attrs([12, 8, 9])),
                    ],
                )
            writer.write_rib_entry(
                Prefix.parse("10.3.0.0/16"),
                [
                    (11, "10.0.0.1", attrs([11, 7, 9])),
                    (12, "10.0.0.2", attrs([12, 5, 9])),  # diverges at peer 12
                ],
            )

        buffer = io.BytesIO()
        writer = MRTWriter(buffer)
        write(writer)
        buffer.seek(0)
        snapshot = RIBSnapshot.from_records(read_mrt(buffer, collector="rrc00"))
        atoms = compute_atoms(snapshot)
        assert len(atoms) == 2
        sizes = sorted(atom.size for atom in atoms)
        assert sizes == [1, 2]


class TestAs4Path:
    """RFC 6793: 2-byte MESSAGE records with AS_TRANS + AS4_PATH."""

    def test_legacy_update_roundtrips_4byte_asns(self):
        # 196615 needs 4 bytes: a 2-byte session carries AS_TRANS in
        # AS_PATH and the true path in AS4_PATH.
        bundle = attrs([65001, 196615, 394254])

        def write(writer):
            writer.write_update(
                65001, "10.0.0.1",
                announced=[(Prefix.parse("10.1.0.0/16"), bundle)],
                as4=False,
            )

        records = roundtrip(write)
        assert len(records) == 1
        record = records[0]
        assert not record.is_corrupt
        element = record.elements[0]
        # Without the merge, AS_TRANS (23456) would remain in the path
        # and split atoms spuriously.
        assert element.attributes.as_path == ASPath.from_asns(
            [65001, 196615, 394254]
        )
        assert not element.attributes.as_path.contains_asn(23456)

    def test_legacy_update_without_4byte_asns_has_no_as4_path(self):
        from repro.stream.mrt import ATTR_AS4_PATH, MRTWriter

        buffer = io.BytesIO()
        writer = MRTWriter(buffer)
        bundle = attrs([65001, 3257, 9002])
        writer.write_update(
            65001, "10.0.0.1",
            announced=[(Prefix.parse("10.1.0.0/16"), bundle)],
            as4=False,
        )
        # No ASN needs 4 bytes, so no AS4_PATH attribute is emitted and
        # the plain 2-byte path round-trips unchanged.
        data = buffer.getvalue()
        assert bytes([0xC0, ATTR_AS4_PATH]) not in data
        buffer.seek(0)
        records = list(read_mrt(buffer))
        assert records[0].elements[0].attributes.as_path == bundle.as_path

    def test_longer_as_path_keeps_leading_hops(self):
        from repro.net.aspath import merge_as4_path

        # A 2-byte speaker prepended itself after AS4_PATH was attached:
        # the merged path keeps the excess leading AS_PATH hop.
        as_path = ASPath.from_asns([64499, 23456, 23456])
        as4_path = ASPath.from_asns([196615, 196616])
        merged = merge_as4_path(as_path, as4_path)
        assert merged == ASPath.from_asns([64499, 196615, 196616])

    def test_malformed_longer_as4_path_ignored(self):
        from repro.net.aspath import merge_as4_path

        as_path = ASPath.from_asns([64499, 23456])
        as4_path = ASPath.from_asns([1, 2, 3])
        assert merge_as4_path(as_path, as4_path) == as_path


class TestBgp4mpValidation:
    """Damaged BGP4MP records are flagged, never misparsed."""

    def _valid_update_bytes(self):
        buffer = io.BytesIO()
        writer = MRTWriter(buffer)
        writer.write_update(
            65001, "10.0.0.1",
            announced=[(Prefix.parse("10.1.0.0/16"), attrs([65001, 9]))],
            timestamp=7,
        )
        return bytearray(buffer.getvalue())

    def test_bad_marker_flagged(self):
        import struct

        data = self._valid_update_bytes()
        header_len = 12
        # BGP4MP_MESSAGE_AS4 peer header: 4+4 ASNs, 2 ifindex, 2 AFI,
        # 4+4 addresses = 20 bytes; the marker starts right after.
        marker_offset = header_len + 20
        assert data[marker_offset] == 0xFF
        data[marker_offset] = 0x00
        records = list(read_mrt(io.BytesIO(bytes(data))))
        assert len(records) == 1
        assert records[0].is_corrupt
        assert "marker" in records[0].corrupt_warning
        assert records[0].peer_asn == 65001
        assert records[0].elements == ()

    def test_declared_length_beyond_record_flagged(self):
        data = self._valid_update_bytes()
        length_offset = 12 + 20 + 16
        data[length_offset : length_offset + 2] = (999).to_bytes(2, "big")
        records = list(read_mrt(io.BytesIO(bytes(data))))
        assert records[0].is_corrupt
        assert "length" in records[0].corrupt_warning

    def test_truncated_message_body_flagged(self):
        import struct

        data = self._valid_update_bytes()
        # Chop the last 6 bytes of the UPDATE and fix up the MRT length
        # so only the BGP-level declared length disagrees.
        chopped = data[:-6]
        mrt_len = len(chopped) - 12
        chopped[8:12] = mrt_len.to_bytes(4, "big")
        records = list(read_mrt(io.BytesIO(bytes(chopped))))
        assert len(records) == 1
        assert records[0].is_corrupt

    def test_truncated_peer_header_flagged(self):
        import struct

        buffer = io.BytesIO(struct.pack(">IHHI", 7, 16, 4, 3) + b"\x00\x00\x00")
        records = list(read_mrt(buffer))
        assert records[0].is_corrupt
        assert "peer header" in records[0].corrupt_warning

    def test_corrupt_records_feed_sanitizer_signal(self):
        """The flagged records carry the signal sanitize() keys on."""
        from repro.core.sanitize import SanitizationConfig, audit_peers, flag_abnormal_peers

        data = self._valid_update_bytes()
        marker_offset = 12 + 20
        data[marker_offset] = 0x00
        records = list(read_mrt(io.BytesIO(bytes(data))))
        audits, _ = audit_peers(records)
        removed = flag_abnormal_peers(audits, SanitizationConfig())
        assert removed == {65001: "addpath"}


class TestIPv6PureWithdrawal:
    """MP_UNREACH_NLRI-only UPDATEs (no AS_PATH at all) must flow
    through read_mrt -> RIBSnapshot.apply_record and remove routes."""

    def test_withdrawal_reaches_rib(self):
        from repro.bgp.rib import RIBSnapshot

        prefix = Prefix.parse("2001:db8::/32")
        bundle = attrs([65001, 9])

        buffer = io.BytesIO()
        writer = MRTWriter(buffer)
        writer.write_update(
            65001, "10.0.0.1", announced=[(prefix, bundle)], timestamp=10
        )
        writer.write_update(
            65001, "10.0.0.1", announced=[], withdrawn=[prefix], timestamp=20
        )
        buffer.seek(0)
        records = list(read_mrt(buffer, collector="rrc00"))
        assert len(records) == 2
        pure = records[1]
        assert not pure.is_corrupt
        assert [e.is_withdrawal for e in pure.elements] == [True]
        assert pure.elements[0].attributes is None

        snapshot = RIBSnapshot()
        snapshot.apply_record(records[0])
        table = snapshot.table(records[0].peer_id)
        assert table is not None and prefix in table
        snapshot.apply_record(pure)
        assert prefix not in table
        assert snapshot.timestamp == 20

    def test_withdrawal_only_no_other_attributes(self):
        # The attribute block holds exactly one attribute: MP_UNREACH.
        prefix = Prefix.parse("2001:db8:7::/48")
        buffer = io.BytesIO()
        writer = MRTWriter(buffer)
        writer.write_update(65001, "10.0.0.1", announced=[], withdrawn=[prefix])
        buffer.seek(0)
        records = list(read_mrt(buffer))
        assert len(records) == 1
        assert {str(e.prefix) for e in records[0].elements} == {str(prefix)}
        assert all(e.is_withdrawal for e in records[0].elements)
