"""Tests for the streaming atom-maintenance pipeline (repro.stream.live).

The simulator's update streams never change paths or withdraw routes,
so every stream here is hand-crafted: announcements that move prefixes
between atoms, withdrawals, out-of-order arrivals, and new prefixes —
the churn the incremental machinery exists for.
"""

import threading

import pytest

from repro.bgp.attributes import PathAttributes
from repro.bgp.messages import ElementType, RouteElement, RouteRecord
from repro.bgp.rib import RIBSnapshot
from repro.core.atoms import compute_atoms
from repro.net.aspath import ASPath
from repro.net.prefix import Prefix
from repro.store import AtomStore
from repro.stream.live import (
    LiveConfig,
    LiveError,
    LivePipeline,
    PrefixSharder,
    ThreadSafeInternPool,
)

PEERS = [("rrc00", 1, "10.9.1.1"), ("rrc00", 2, "10.9.2.1"),
         ("rrc01", 3, "10.9.3.1")]

#: window width used throughout; timestamps below are chosen against it
W = 100


def rib_record(peer, entries, timestamp=50):
    collector, peer_asn, peer_address = peer
    elements = [
        RouteElement(
            ElementType.RIB, Prefix.parse(text),
            PathAttributes(ASPath.parse(path)),
        )
        for text, path in entries
    ]
    return RouteRecord(
        "rib", "ris", collector, peer_asn, peer_address, timestamp, elements
    )


def update_record(peer, timestamp, announced=(), withdrawn=()):
    collector, peer_asn, peer_address = peer
    elements = [
        RouteElement(
            ElementType.ANNOUNCEMENT, Prefix.parse(text),
            PathAttributes(ASPath.parse(path)),
        )
        for text, path in announced
    ]
    elements += [
        RouteElement(ElementType.WITHDRAWAL, Prefix.parse(text))
        for text in withdrawn
    ]
    return RouteRecord(
        "update", "ris", collector, peer_asn, peer_address, timestamp, elements
    )


def prime_records():
    """Three full-feed peers over six prefixes, two initial atoms."""
    return [
        rib_record(PEERS[0], [
            ("10.0.1.0/24", "1 5 9"), ("10.0.2.0/24", "1 5 9"),
            ("10.0.3.0/24", "1 6 8"), ("10.0.4.0/24", "1 6 8"),
            ("10.0.5.0/24", "1 5 9"), ("10.0.6.0/24", "1 6 8"),
        ]),
        rib_record(PEERS[1], [
            ("10.0.1.0/24", "2 5 9"), ("10.0.2.0/24", "2 5 9"),
            ("10.0.3.0/24", "2 6 8"), ("10.0.4.0/24", "2 6 8"),
            ("10.0.5.0/24", "2 5 9"), ("10.0.6.0/24", "2 6 8"),
        ]),
        rib_record(PEERS[2], [
            ("10.0.1.0/24", "3 5 9"), ("10.0.2.0/24", "3 5 9"),
            ("10.0.3.0/24", "3 6 8"), ("10.0.4.0/24", "3 6 8"),
            ("10.0.5.0/24", "3 5 9"), ("10.0.6.0/24", "3 6 8"),
        ]),
    ]


def churny_updates():
    """Three windows of genuine churn: path moves, withdrawals, births.

    Window 1 ([100, 200)): 10.0.2.0/24 changes path at peer 0 —
    splits it out of its atom.  Window 2 ([200, 300)): a brand-new
    prefix appears at every peer, and 10.0.4.0/24 is withdrawn at
    peer 1 (partial withdrawal: still visible elsewhere, new atom).
    Window 3 ([300, 400)): 10.0.1.0/24 withdrawn everywhere — the
    prefix leaves the partition entirely.
    """
    return [
        update_record(PEERS[0], 110, announced=[("10.0.2.0/24", "1 7 9")]),
        update_record(PEERS[1], 150, announced=[("10.0.5.0/24", "2 5 9")]),
        update_record(PEERS[0], 210, announced=[("10.0.9.0/24", "1 4 2")]),
        update_record(PEERS[1], 220, announced=[("10.0.9.0/24", "2 4 2")]),
        update_record(PEERS[2], 230, announced=[("10.0.9.0/24", "3 4 2")]),
        update_record(PEERS[1], 240, withdrawn=["10.0.4.0/24"]),
        update_record(PEERS[0], 310, withdrawn=["10.0.1.0/24"]),
        update_record(PEERS[1], 320, withdrawn=["10.0.1.0/24"]),
        update_record(PEERS[2], 330, withdrawn=["10.0.1.0/24"]),
    ]


def full_stream():
    return prime_records() + churny_updates()


def cold_atoms(records, vantage_points=None):
    """compute_atoms over the whole stream applied to a fresh RIB."""
    snapshot = RIBSnapshot()
    for record in records:
        snapshot.apply_record(record)
    if vantage_points is None:
        vantage_points = sorted(
            {r.peer_id for r in records if r.record_type == "rib"}
        )
    return compute_atoms(snapshot, vantage_points=vantage_points)


def assert_atoms_equal(ours, theirs):
    assert len(ours) == len(theirs)
    assert list(ours.vantage_points) == list(theirs.vantage_points)
    for mine, other in zip(ours.atoms, theirs.atoms):
        assert mine.atom_id == other.atom_id
        assert mine.prefixes == other.prefixes
        assert tuple(mine.paths) == tuple(other.paths)


class TestPrefixSharder:
    def test_single_shard_routes_everything_to_zero(self):
        sharder = PrefixSharder(
            [Prefix.parse("10.0.1.0/24"), Prefix.parse("10.0.2.0/24")], 1
        )
        assert sharder.route(Prefix.parse("192.168.0.0/16")) == 0

    def test_routing_is_total_and_in_range(self):
        universe = [Prefix.parse(f"10.0.{i}.0/24") for i in range(32)]
        sharder = PrefixSharder(universe, 4)
        seen = set()
        for prefix in universe + [Prefix.parse("203.0.113.0/24")]:
            shard = sharder.route(prefix)
            assert 0 <= shard < 4
            seen.add(shard)
        assert seen == {0, 1, 2, 3}

    def test_more_shards_than_prefixes_collapses(self):
        sharder = PrefixSharder([Prefix.parse("10.0.1.0/24")], 8)
        assert sharder.route(Prefix.parse("10.0.1.0/24")) == 0

    def test_ranges_are_contiguous(self):
        universe = sorted(
            (Prefix.parse(f"10.{i}.0.0/16") for i in range(20)), key=Prefix.key
        )
        sharder = PrefixSharder(universe, 3)
        shards = [sharder.route(p) for p in universe]
        assert shards == sorted(shards)


class TestLiveConfig:
    def test_rejects_bad_values(self):
        with pytest.raises(ValueError):
            LiveConfig(window_seconds=0)
        with pytest.raises(ValueError):
            LiveConfig(shards=0)
        with pytest.raises(ValueError):
            LiveConfig(queue_depth=0)
        with pytest.raises(ValueError):
            LiveConfig(parity="sometimes")

    def test_payload_excludes_shard_count(self):
        payload = LiveConfig(shards=7, queue_depth=3).payload()
        assert "shards" not in payload
        assert "queue_depth" not in payload
        assert payload["window_seconds"] == 900


class TestThreadSafeInternPool:
    def test_concurrent_interning_yields_one_instance(self):
        pool = ThreadSafeInternPool()
        raw = ASPath.parse("1 2 3")
        results = []

        def intern():
            for _ in range(200):
                results.append(pool.path(ASPath.parse("1 2 3")))

        threads = [threading.Thread(target=intern) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        first = pool.path(raw)
        assert all(path is first for path in results)


class TestLivePipeline:
    def test_windows_close_with_parity(self):
        run = LivePipeline(
            full_stream(), LiveConfig(window_seconds=W, shards=2)
        ).run()
        assert [w.index for w in run.windows] == [1, 2, 3]
        assert run.parity_checks == 3
        assert run.prime_records == 3
        # window 1: two announcements, one a genuine path change
        assert run.windows[0].announcements == 2
        assert run.windows[0].key_changes >= 1
        # window 2: new prefix is born, partial withdrawal splits an atom
        assert run.windows[1].withdrawals == 1
        assert run.windows[1].created >= 1
        # window 3: 10.0.1.0/24 disappears from the partition
        assert run.windows[2].withdrawals == 3
        assert run.windows[1].prefixes == 7
        assert run.windows[2].prefixes == 6

    def test_final_atoms_match_cold_compute(self):
        stream = full_stream()
        run = LivePipeline(stream, LiveConfig(window_seconds=W)).run()
        assert run.atoms is not None
        assert_atoms_equal(run.atoms, cold_atoms(stream))

    def test_shard_count_does_not_change_results(self):
        runs = [
            LivePipeline(
                full_stream(), LiveConfig(window_seconds=W, shards=shards)
            ).run()
            for shards in (1, 3)
        ]
        assert_atoms_equal(runs[0].atoms, runs[1].atoms)
        for a, b in zip(runs[0].windows, runs[1].windows):
            assert a.as_dict(deterministic_only=True) == b.as_dict(
                deterministic_only=True
            )

    def test_prime_only_stream_still_yields_atoms(self):
        run = LivePipeline(prime_records(), LiveConfig(window_seconds=W)).run()
        assert run.windows == []
        assert run.atoms is not None
        assert_atoms_equal(run.atoms, cold_atoms(prime_records()))

    def test_no_dump_and_no_vps_is_an_error(self):
        with pytest.raises(LiveError, match="no leading RIB dump"):
            LivePipeline(churny_updates(), LiveConfig(window_seconds=W)).run()

    def test_explicit_vantage_points_without_dump(self):
        vps = [PEERS[0], PEERS[1]]
        stream = churny_updates()
        run = LivePipeline(
            stream, LiveConfig(window_seconds=W), vantage_points=vps
        ).run()
        assert run.vantage_points == vps
        assert run.atoms is not None
        expected = cold_atoms(
            [r for r in stream if r.peer_id in set(vps)], vantage_points=vps
        )
        assert_atoms_equal(run.atoms, expected)

    def test_foreign_peer_records_are_skipped(self):
        stranger = ("rrc09", 99, "10.9.9.9")
        stream = full_stream()
        stream.insert(5, update_record(
            stranger, 115, announced=[("10.0.2.0/24", "99 5 9")]
        ))
        run = LivePipeline(stream, LiveConfig(window_seconds=W)).run()
        assert run.records == len(churny_updates())
        assert stranger not in run.vantage_points
        assert_atoms_equal(run.atoms, cold_atoms(full_stream()))

    def test_max_windows_stops_early(self):
        run = LivePipeline(
            full_stream(), LiveConfig(window_seconds=W, max_windows=2)
        ).run()
        assert len(run.windows) == 2
        assert run.stopped_early

    def test_withdrawal_for_never_announced_prefix_is_harmless(self):
        stream = full_stream()
        stream.insert(4, update_record(
            PEERS[0], 120, withdrawn=["172.16.0.0/16"]
        ))
        run = LivePipeline(
            stream, LiveConfig(window_seconds=W, shards=2)
        ).run()
        assert run.parity_checks == 3
        assert_atoms_equal(run.atoms, cold_atoms(full_stream()))

    def test_backpressure_with_tiny_queues(self):
        config = LiveConfig(window_seconds=W, shards=2, queue_depth=1)
        run = LivePipeline(full_stream(), config).run()
        assert run.parity_checks == 3
        assert_atoms_equal(run.atoms, cold_atoms(full_stream()))

    def test_on_window_sees_every_boundary(self):
        seen = []
        LivePipeline(full_stream(), LiveConfig(window_seconds=W)).run(
            on_window=seen.append
        )
        assert [w.index for w in seen] == [1, 2, 3]

    def test_worker_failure_surfaces_as_live_error(self):
        element = RouteElement(
            ElementType.ANNOUNCEMENT, Prefix.parse("10.0.2.0/24"),
            PathAttributes(ASPath.parse("1 7 9")),
        )
        # Poison the attribute bundle so the worker's key recomputation
        # blows up at the next refresh barrier.
        object.__setattr__(element, "attributes", object())
        collector, peer_asn, peer_address = PEERS[0]
        bad = RouteRecord(
            "update", "ris", collector, peer_asn, peer_address, 130, [element]
        )
        stream = prime_records() + [
            update_record(PEERS[0], 110, announced=[("10.0.2.0/24", "1 7 9")]),
            bad,
            update_record(PEERS[0], 210, announced=[("10.0.3.0/24", "1 7 9")]),
        ]
        with pytest.raises(LiveError, match="shard 0 failed"):
            LivePipeline(stream, LiveConfig(window_seconds=W)).run()


class TestCheckpointResume:
    def _reference(self):
        return LivePipeline(full_stream(), LiveConfig(window_seconds=W)).run()

    def _assert_resumes_like_reference(self, killed, resumed):
        reference = self._reference()
        indices = [w.index for w in killed.windows] + [
            w.index for w in resumed.windows
        ]
        assert indices == [w.index for w in reference.windows]
        combined = killed.windows + resumed.windows
        for ours, theirs in zip(combined, reference.windows):
            assert ours.as_dict(deterministic_only=True) == theirs.as_dict(
                deterministic_only=True
            )
        assert_atoms_equal(resumed.atoms, reference.atoms)

    def test_kill_and_resume_matches_uninterrupted_run(self, tmp_path):
        config = LiveConfig(
            window_seconds=W, checkpoint_dir=tmp_path / "ckpt", max_windows=2
        )
        killed = LivePipeline(full_stream(), config).run()
        assert killed.stopped_early and killed.checkpoints >= 2

        resume = LiveConfig(window_seconds=W, checkpoint_dir=tmp_path / "ckpt")
        resumed = LivePipeline(full_stream(), resume).run()
        assert resumed.resumed and resumed.resumed_from == 2
        assert resumed.skipped > 0
        self._assert_resumes_like_reference(killed, resumed)

    def test_kill_via_on_window_exception(self, tmp_path):
        class Kill(Exception):
            pass

        config = LiveConfig(window_seconds=W, checkpoint_dir=tmp_path / "c")

        def bomb(window):
            if window.index == 1:
                raise Kill()

        with pytest.raises(Kill):
            LivePipeline(full_stream(), config).run(on_window=bomb)

        resumed = LivePipeline(full_stream(), config).run()
        assert resumed.resumed and resumed.resumed_from == 1
        assert [w.index for w in resumed.windows] == [2, 3]
        assert_atoms_equal(resumed.atoms, self._reference().atoms)

    def test_resume_under_different_shard_count(self, tmp_path):
        first = LiveConfig(
            window_seconds=W, shards=3,
            checkpoint_dir=tmp_path / "c", max_windows=1,
        )
        LivePipeline(full_stream(), first).run()
        second = LiveConfig(
            window_seconds=W, shards=1, checkpoint_dir=tmp_path / "c"
        )
        resumed = LivePipeline(full_stream(), second).run()
        assert resumed.resumed
        assert_atoms_equal(resumed.atoms, self._reference().atoms)

    def test_resuming_a_finished_stream_is_a_noop(self, tmp_path):
        config = LiveConfig(window_seconds=W, checkpoint_dir=tmp_path / "c")
        finished = LivePipeline(full_stream(), config).run()
        again = LivePipeline(full_stream(), config).run()
        assert again.resumed and again.windows == []
        assert again.skipped == finished.records + finished.prime_records
        assert_atoms_equal(again.atoms, finished.atoms)

    def test_explicit_vps_must_match_checkpoint(self, tmp_path):
        config = LiveConfig(
            window_seconds=W, checkpoint_dir=tmp_path / "c", max_windows=1
        )
        LivePipeline(full_stream(), config).run()
        resume = LiveConfig(window_seconds=W, checkpoint_dir=tmp_path / "c")
        with pytest.raises(LiveError, match="disagree"):
            LivePipeline(
                full_stream(), resume, vantage_points=[PEERS[0]]
            ).run()


class TestStoreSink:
    def test_window_snapshots_land_in_a_queryable_store(self, tmp_path):
        store_dir = tmp_path / "store"
        config = LiveConfig(window_seconds=W, store_dir=store_dir)
        run = LivePipeline(full_stream(), config).run()
        assert run.store_keys == ["w00000001", "w00000002", "w00000003"]
        with AtomStore(store_dir) as store:
            keys = [entry.key for entry in store.snapshots()]
            assert keys == run.store_keys
            for window, key in zip(run.windows, run.store_keys):
                atoms = store.atoms(key)
                assert len(atoms) == window.atoms
                assert atoms.prefix_count() == window.prefixes
            assert_atoms_equal(store.atoms(run.store_keys[-1]), run.atoms)

    def test_resume_appends_to_existing_store(self, tmp_path):
        store_dir = tmp_path / "store"
        first = LiveConfig(
            window_seconds=W, store_dir=store_dir,
            checkpoint_dir=tmp_path / "c", max_windows=2,
        )
        LivePipeline(full_stream(), first).run()
        second = LiveConfig(
            window_seconds=W, store_dir=store_dir,
            checkpoint_dir=tmp_path / "c",
        )
        resumed = LivePipeline(full_stream(), second).run()
        assert resumed.store_keys == [
            "w00000001", "w00000002", "w00000003"
        ]
        with AtomStore(store_dir) as store:
            assert [e.key for e in store.snapshots()] == resumed.store_keys

    def test_periodic_merge_cadence(self, tmp_path):
        store_dir = tmp_path / "store"
        config = LiveConfig(
            window_seconds=W, store_dir=store_dir, store_merge_every=1
        )
        run = LivePipeline(full_stream(), config).run()
        with AtomStore(store_dir) as store:
            assert len(store.snapshots()) == len(run.windows)
