"""Tests for record serialization."""

from hypothesis import given, strategies as st

from repro.bgp.attributes import Community, PathAttributes
from repro.bgp.messages import ElementType, RouteElement, RouteRecord
from repro.net.aspath import ASPath
from repro.net.prefix import AF_INET, Prefix
from repro.stream.serialize import record_from_json, record_to_json


def roundtrip(record):
    return record_from_json(record_to_json(record))


class TestRoundtrip:
    def test_announcement(self):
        record = RouteRecord(
            "update", "ris", "rrc00", 65001, "10.0.0.1", 1234,
            [
                RouteElement(
                    ElementType.ANNOUNCEMENT,
                    Prefix.parse("192.0.2.0/24"),
                    PathAttributes(
                        ASPath.from_asns([65001, 2, 3]),
                        communities=[Community(3257, 2990)],
                        med=10,
                    ),
                )
            ],
        )
        restored = roundtrip(record)
        assert restored.peer_id == record.peer_id
        assert restored.timestamp == record.timestamp
        assert restored.elements == record.elements

    def test_withdrawal(self):
        record = RouteRecord(
            "update", "routeviews", "route-views2", 65001, "10.0.0.1", 1,
            [RouteElement(ElementType.WITHDRAWAL, Prefix.parse("10.0.0.0/8"))],
        )
        restored = roundtrip(record)
        assert restored.elements[0].is_withdrawal
        assert restored.elements[0].attributes is None

    def test_as_set_path(self):
        record = RouteRecord(
            "rib", "ris", "rrc00", 1, "10.0.0.1", 1,
            [
                RouteElement(
                    ElementType.RIB,
                    Prefix.parse("10.0.0.0/8"),
                    PathAttributes(ASPath.parse("1 2 [3 4]")),
                )
            ],
        )
        assert roundtrip(record).elements[0].attributes.as_path.has_set

    def test_corrupt_warning(self):
        record = RouteRecord(
            "rib", "ris", "rrc00", 1, "10.0.0.1", 1, [],
            corrupt_warning="unknown BGP4MP record subtype 9",
        )
        assert roundtrip(record).corrupt_warning == record.corrupt_warning

    def test_ipv6(self):
        record = RouteRecord(
            "rib", "ris", "rrc00", 1, "2001:db8::1", 1,
            [
                RouteElement(
                    ElementType.RIB,
                    Prefix.parse("2001:db8::/32"),
                    PathAttributes(ASPath.from_asns([1, 2])),
                )
            ],
        )
        assert roundtrip(record).elements[0].prefix == Prefix.parse("2001:db8::/32")


prefix_strategy = st.builds(
    Prefix.from_host_bits,
    st.just(AF_INET),
    st.integers(min_value=0, max_value=(1 << 32) - 1),
    st.integers(min_value=8, max_value=32),
)
path_strategy = st.builds(
    ASPath.from_asns,
    st.lists(st.integers(min_value=1, max_value=2**32 - 1), min_size=1, max_size=6),
)
element_strategy = st.builds(
    RouteElement,
    st.just(ElementType.ANNOUNCEMENT),
    prefix_strategy,
    st.builds(PathAttributes, path_strategy),
)


@given(st.lists(element_strategy, max_size=8), st.integers(min_value=0, max_value=2**31))
def test_roundtrip_property(elements, timestamp):
    record = RouteRecord(
        "update", "ris", "rrc00", 65001, "10.0.0.1", timestamp, elements
    )
    restored = roundtrip(record)
    assert restored.elements == record.elements
    assert restored.timestamp == timestamp
