"""Failure-injection tests: the stream layer under damaged inputs."""

import gzip
import json

import pytest

from repro.stream.archive import RecordArchive
from repro.stream.serialize import record_from_json


class TestSerializerRobustness:
    def test_rejects_garbage_json(self):
        with pytest.raises(json.JSONDecodeError):
            record_from_json("{not json")

    def test_rejects_missing_fields(self):
        with pytest.raises(KeyError):
            record_from_json(json.dumps({"type": "rib"}))

    def test_rejects_bad_prefix(self):
        payload = {
            "type": "rib", "project": "ris", "collector": "rrc00",
            "peer_asn": 1, "peer_addr": "x", "time": 1,
            "elements": [{"t": "R", "p": "999.0.0.0/8", "path": "1 2"}],
        }
        with pytest.raises(Exception):
            record_from_json(json.dumps(payload))

    def test_rejects_bad_record_type(self):
        payload = {
            "type": "bogus", "project": "ris", "collector": "rrc00",
            "peer_asn": 1, "peer_addr": "x", "time": 1, "elements": [],
        }
        with pytest.raises(ValueError):
            record_from_json(json.dumps(payload))


class TestArchiveRobustness:
    def _dump_path(self, tmp_path):
        path = tmp_path / "ris" / "rrc00" / "rib" / "2020" / "01"
        path.mkdir(parents=True)
        return path / "1577836800.jsonl.gz"

    def test_truncated_gzip_raises(self, tmp_path):
        dump = self._dump_path(tmp_path)
        with gzip.open(dump, "wt") as handle:
            handle.write('{"type": "rib"')
        # Truncate the compressed stream itself.
        raw = dump.read_bytes()
        dump.write_bytes(raw[: len(raw) // 2])
        archive = RecordArchive(tmp_path)
        with pytest.raises(Exception):
            list(archive.records())

    def test_corrupt_line_raises_cleanly(self, tmp_path):
        dump = self._dump_path(tmp_path)
        with gzip.open(dump, "wt") as handle:
            handle.write("this is not json\n")
        archive = RecordArchive(tmp_path)
        with pytest.raises(json.JSONDecodeError):
            list(archive.records())

    def test_blank_lines_skipped(self, tmp_path):
        dump = self._dump_path(tmp_path)
        payload = {
            "type": "rib", "project": "ris", "collector": "rrc00",
            "peer_asn": 1, "peer_addr": "x", "time": 1, "elements": [],
        }
        with gzip.open(dump, "wt") as handle:
            handle.write("\n\n" + json.dumps(payload) + "\n\n")
        archive = RecordArchive(tmp_path)
        assert len(list(archive.records())) == 1

    def test_stray_files_ignored(self, tmp_path):
        dump = self._dump_path(tmp_path)
        with gzip.open(dump, "wt") as handle:
            handle.write("")
        (tmp_path / "README.txt").write_text("not a dump")
        (dump.parent / "notes.md").write_text("also not a dump")
        archive = RecordArchive(tmp_path)
        assert list(archive.records()) == []

    def test_empty_archive(self, tmp_path):
        archive = RecordArchive(tmp_path / "fresh")
        assert archive.dumps() == []
        assert list(archive.records()) == []
