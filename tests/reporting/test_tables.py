"""Tests for table rendering."""

from repro.reporting.tables import render_table


class TestRenderTable:
    def test_alignment(self):
        table = render_table(
            ["Metric", "2004", "2024"],
            [("atoms", 34261, 483117), ("mean size", 3.84, 2.13)],
        )
        lines = table.splitlines()
        assert lines[0].startswith("Metric")
        assert "34,261" not in table  # no implicit formatting of ints
        assert "3.84" in table and "2.13" in table

    def test_title(self):
        table = render_table(["a"], [[1]], title="Table 1")
        assert table.splitlines()[0] == "Table 1"
        assert table.splitlines()[1] == "======="

    def test_numbers_right_aligned(self):
        table = render_table(["label", "v"], [("x", 1), ("longer", 100)])
        lines = table.splitlines()
        assert lines[-1].endswith("100")
        assert lines[-2].endswith("  1")

    def test_handles_empty_rows(self):
        table = render_table(["a", "b"], [])
        assert "a" in table
