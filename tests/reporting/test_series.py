"""Tests for figure series."""

import csv

from repro.reporting.series import Series, write_csv


class TestSeries:
    def test_add_and_access(self):
        series = Series("cam")
        series.add(2004, 96.3)
        series.add(2024, 83.7)
        assert series.xs() == [2004, 2024]
        assert series.ys() == [96.3, 83.7]
        assert series.last() == 83.7

    def test_none_values_allowed(self):
        series = Series("sparse")
        series.add(1, None)
        assert series.ys() == [None]
        assert "-" in series.render()

    def test_render(self):
        series = Series("cam")
        series.add(2004, 96.34)
        text = series.render(x_label="year")
        assert "series: cam" in text
        assert "year=2004: 96.3" in text


class TestCsv:
    def test_union_grid(self, tmp_path):
        a = Series("a")
        a.add(1, 10.0)
        a.add(2, 20.0)
        b = Series("b")
        b.add(2, 200.0)
        b.add(3, 300.0)
        path = tmp_path / "out.csv"
        write_csv(path, [a, b])
        with open(path, newline="") as handle:
            rows = list(csv.reader(handle))
        assert rows[0] == ["x", "a", "b"]
        assert rows[1] == ["1", "10.0", ""]
        assert rows[2] == ["2", "20.0", "200.0"]
        assert rows[3] == ["3", "", "300.0"]
