"""Tests for ASCII figure rendering."""

from repro.reporting.figures import render_chart, render_histogram
from repro.reporting.series import Series


def series(name, points):
    s = Series(name)
    for x, y in points:
        s.add(x, y)
    return s


class TestChart:
    def test_basic_render(self):
        chart = render_chart(
            [series("cam", [(2004, 96.0), (2014, 94.0), (2024, 84.0)])],
            title="stability",
        )
        assert "stability" in chart
        assert "legend: o cam" in chart
        assert "2004" in chart and "2024" in chart

    def test_multiple_series_markers(self):
        chart = render_chart(
            [
                series("a", [(0, 0.0), (10, 10.0)]),
                series("b", [(0, 10.0), (10, 0.0)]),
            ]
        )
        assert "o" in chart and "x" in chart
        assert "o a" in chart and "x b" in chart

    def test_none_values_skipped(self):
        chart = render_chart([series("sparse", [(0, None), (1, 5.0)])])
        assert "(no data)" not in chart

    def test_empty(self):
        assert "(no data)" in render_chart([series("empty", [])])

    def test_constant_series_does_not_crash(self):
        chart = render_chart([series("flat", [(0, 5.0), (10, 5.0)])])
        assert "flat" in chart

    def test_y_bounds_respected(self):
        chart = render_chart(
            [series("a", [(0, 50.0)])], y_min=0.0, y_max=100.0
        )
        assert "100" in chart and chart.strip().endswith("a")


class TestHistogram:
    def test_bars_scale(self):
        text = render_histogram({1: 10, 2: 5, 3: 0}, width=10)
        lines = text.splitlines()
        assert lines[0].count("#") == 10
        assert lines[1].count("#") == 5
        assert lines[2].count("#") == 0

    def test_title_and_empty(self):
        assert render_histogram({}, title="t") == "t\n(no data)"
