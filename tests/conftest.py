"""Shared fixtures: small deterministic worlds reused across test modules.

Session scope keeps the suite fast — tests must treat these as
read-only; anything that advances time builds its own simulator.
"""

import pytest

from repro.simulation.scenario import SimulatedInternet
from repro.topology.evolution import WorldParams

#: Parameters for a small but structurally complete world.
TEST_WORLD = WorldParams(
    seed=1234,
    as_scale=1 / 300.0,
    prefix_scale=1 / 300.0,
    peer_scale=0.03,
    collector_scale=0.3,
    min_fullfeed_peers=8,
    min_collectors=2,
)


@pytest.fixture(scope="session")
def internet_2004():
    """A 2004 world, frozen at the paper's first snapshot instant."""
    return SimulatedInternet(TEST_WORLD, start="2004-01-15 08:00")


@pytest.fixture(scope="session")
def records_2004(internet_2004):
    return list(internet_2004.rib_records("2004-01-15 08:00"))


@pytest.fixture(scope="session")
def internet_2024():
    """A 2024 world (includes IPv6, artifacts, many peers)."""
    return SimulatedInternet(TEST_WORLD, start="2024-10-15 08:00")


@pytest.fixture(scope="session")
def records_2024(internet_2024):
    return list(internet_2024.rib_records("2024-10-15 08:00"))


@pytest.fixture(scope="session")
def atoms_2024(records_2024):
    from repro.core.pipeline import compute_policy_atoms

    return compute_policy_atoms(records_2024)
