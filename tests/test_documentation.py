"""Documentation gate: every public item carries a docstring.

Walks the installed ``repro`` package and asserts modules, public
classes, public functions and public methods are documented — the
"doc comments on every public item" guarantee of the release.
"""

import importlib
import inspect
import pkgutil

import pytest

import repro


def _walk_modules():
    yield repro
    for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        if info.name.endswith("__main__"):
            continue  # executable shim, not API surface
        yield importlib.import_module(info.name)


MODULES = list(_walk_modules())


@pytest.mark.parametrize("module", MODULES, ids=lambda m: m.__name__)
def test_module_documented(module):
    assert module.__doc__ and module.__doc__.strip(), module.__name__


@pytest.mark.parametrize("module", MODULES, ids=lambda m: m.__name__)
def test_public_items_documented(module):
    undocumented = []
    for name, item in vars(module).items():
        if name.startswith("_"):
            continue
        if not (inspect.isclass(item) or inspect.isfunction(item)):
            continue
        if getattr(item, "__module__", None) != module.__name__:
            continue  # re-export; documented at its home
        if not (item.__doc__ and item.__doc__.strip()):
            undocumented.append(f"{module.__name__}.{name}")
        if inspect.isclass(item):
            for method_name, method in vars(item).items():
                if method_name.startswith("_"):
                    continue
                if not inspect.isfunction(method):
                    continue
                if not (method.__doc__ and method.__doc__.strip()):
                    undocumented.append(
                        f"{module.__name__}.{name}.{method_name}"
                    )
    assert not undocumented, "undocumented public items:\n" + "\n".join(undocumented)
