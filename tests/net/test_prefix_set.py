"""Tests for PrefixSet operations."""

import pytest
from hypothesis import given, strategies as st

from repro.net.prefix import AF_INET, Prefix
from repro.net.prefix_set import PrefixSet


def p(text):
    return Prefix.parse(text)


def make(*texts):
    return PrefixSet([p(t) for t in texts])


class TestBasics:
    def test_membership(self):
        prefixes = make("10.0.0.0/8", "192.0.2.0/24")
        assert p("10.0.0.0/8") in prefixes
        assert p("10.0.0.0/16") not in prefixes
        assert len(prefixes) == 2

    def test_iteration_sorted(self):
        prefixes = make("192.0.2.0/24", "10.0.0.0/8")
        assert [str(x) for x in prefixes] == ["10.0.0.0/8", "192.0.2.0/24"]

    def test_discard(self):
        prefixes = make("10.0.0.0/8")
        prefixes.discard(p("10.0.0.0/8"))
        prefixes.discard(p("10.0.0.0/8"))  # idempotent
        assert len(prefixes) == 0

    def test_family_enforced(self):
        prefixes = make("10.0.0.0/8")
        with pytest.raises(ValueError):
            prefixes.add(p("2001:db8::/32"))

    def test_duplicates_ignored(self):
        prefixes = PrefixSet([p("10.0.0.0/8"), p("10.0.0.0/8")])
        assert len(prefixes) == 1


class TestCoverage:
    def test_covers(self):
        prefixes = make("10.0.0.0/8")
        assert prefixes.covers(p("10.1.0.0/16"))
        assert not prefixes.covers(p("11.0.0.0/16"))

    def test_covering_member_most_specific(self):
        prefixes = make("10.0.0.0/8", "10.1.0.0/16")
        assert prefixes.covering_member(p("10.1.2.0/24")) == p("10.1.0.0/16")

    def test_more_specifics(self):
        prefixes = make("10.0.0.0/8", "10.1.0.0/16", "11.0.0.0/8")
        inside = prefixes.more_specifics_of(p("10.0.0.0/8"))
        assert set(inside) == {p("10.0.0.0/8"), p("10.1.0.0/16")}

    def test_overlaps_prefix(self):
        prefixes = make("10.1.0.0/16")
        assert prefixes.overlaps_prefix(p("10.0.0.0/8"))   # member inside
        assert prefixes.overlaps_prefix(p("10.1.2.0/24"))  # member covers
        assert not prefixes.overlaps_prefix(p("11.0.0.0/8"))

    def test_maximal_members(self):
        prefixes = make("10.0.0.0/8", "10.1.0.0/16", "11.0.0.0/8")
        assert [str(x) for x in prefixes.maximal_members()] == [
            "10.0.0.0/8",
            "11.0.0.0/8",
        ]

    def test_address_span_no_double_count(self):
        prefixes = make("10.0.0.0/8", "10.1.0.0/16")
        assert prefixes.address_span() == 1 << 24


class TestAggregation:
    def test_merges_sibling_pairs(self):
        prefixes = make("192.0.2.0/25", "192.0.2.128/25")
        assert [str(x) for x in prefixes.aggregated()] == ["192.0.2.0/24"]

    def test_recursive_merge(self):
        prefixes = make(
            "192.0.2.0/26", "192.0.2.64/26", "192.0.2.128/26", "192.0.2.192/26"
        )
        assert [str(x) for x in prefixes.aggregated()] == ["192.0.2.0/24"]

    def test_absorbs_contained(self):
        prefixes = make("10.0.0.0/8", "10.5.0.0/16")
        assert [str(x) for x in prefixes.aggregated()] == ["10.0.0.0/8"]

    def test_disjoint_untouched(self):
        prefixes = make("10.0.0.0/8", "192.0.2.0/24")
        assert len(prefixes.aggregated()) == 2


class TestAlgebra:
    def test_union_intersection_difference(self):
        a = make("10.0.0.0/8", "11.0.0.0/8")
        b = make("11.0.0.0/8", "12.0.0.0/8")
        assert len(a.union(b)) == 3
        assert [str(x) for x in a.intersection(b)] == ["11.0.0.0/8"]
        assert [str(x) for x in a.difference(b)] == ["10.0.0.0/8"]


prefix_strategy = st.builds(
    Prefix.from_host_bits,
    st.just(AF_INET),
    st.integers(min_value=0, max_value=(1 << 32) - 1),
    st.integers(min_value=4, max_value=28),
)


@given(st.lists(prefix_strategy, max_size=25))
def test_aggregation_preserves_address_space(prefixes):
    original = PrefixSet(prefixes)
    aggregated = original.aggregated()
    assert aggregated.address_span() == original.address_span()
    # Every original member is still covered.
    for member in original:
        assert aggregated.covers(member)


@given(st.lists(prefix_strategy, max_size=25))
def test_aggregated_is_minimal_fixed_point(prefixes):
    aggregated = PrefixSet(prefixes).aggregated()
    again = aggregated.aggregated()
    assert set(aggregated) == set(again)
    # No member contains another.
    members = list(aggregated)
    for i, left in enumerate(members):
        for right in members[i + 1:]:
            assert not left.overlaps(right)
