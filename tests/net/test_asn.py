"""Tests for repro.net.asn."""

import pytest

from repro.net.asn import (
    AS_TRANS,
    ASN_MAX,
    is_documentation_asn,
    is_private_asn,
    is_public_asn,
    is_reserved_asn,
    validate_asn,
)


class TestValidation:
    def test_accepts_ordinary_asn(self):
        assert validate_asn(3257) == 3257

    def test_accepts_four_byte_asn(self):
        assert validate_asn(4200000000) == 4200000000

    @pytest.mark.parametrize("bad", [0, -1, ASN_MAX + 1, "x", None, 1.5])
    def test_rejects_invalid(self, bad):
        with pytest.raises(ValueError):
            validate_asn(bad)


class TestClassification:
    def test_private_range_16bit(self):
        assert is_private_asn(65000)  # the paper's leaked ASN (A8.3.2)
        assert is_private_asn(64512)
        assert is_private_asn(65534)
        assert not is_private_asn(64511)
        assert not is_private_asn(65535)

    def test_private_range_32bit(self):
        assert is_private_asn(4200000000)
        assert is_private_asn(4294967294)
        assert not is_private_asn(4294967295)

    def test_documentation_ranges(self):
        assert is_documentation_asn(64496)
        assert is_documentation_asn(65551)
        assert not is_documentation_asn(65552)

    def test_as_trans_is_reserved(self):
        assert is_reserved_asn(AS_TRANS)

    def test_public_excludes_all_reserved(self):
        for asn in (0, 65000, 65535, AS_TRANS, 64496, ASN_MAX):
            assert not is_public_asn(asn)
        for asn in (1, 3257, 5511, 25885, 400000):
            assert is_public_asn(asn)
