"""Tests for repro.net.prefix."""

import pytest
from hypothesis import given, strategies as st

from repro.net.prefix import AF_INET, AF_INET6, Prefix, PrefixError, aggregate


class TestParsing:
    def test_parse_ipv4(self):
        prefix = Prefix.parse("192.0.2.0/24")
        assert prefix.family == AF_INET
        assert prefix.length == 24
        assert prefix.network == (192 << 24) | (0 << 16) | (2 << 8)

    def test_parse_ipv4_host(self):
        assert Prefix.parse("10.1.2.3").length == 32

    def test_parse_ipv6(self):
        prefix = Prefix.parse("2001:db8::/32")
        assert prefix.family == AF_INET6
        assert prefix.length == 32
        assert prefix.network == 0x20010DB8 << 96

    def test_parse_ipv6_full_form(self):
        prefix = Prefix.parse("2001:0db8:0000:0000:0000:0000:0000:0001/128")
        assert str(prefix) == "2001:db8::1/128"

    def test_parse_ipv6_embedded_ipv4(self):
        prefix = Prefix.parse("::ffff:192.0.2.1/128")
        assert prefix.network & 0xFFFFFFFF == (192 << 24) | (2 << 8) | 1

    def test_parse_masks_host_bits(self):
        assert Prefix.parse("192.0.2.77/24") == Prefix.parse("192.0.2.0/24")

    @pytest.mark.parametrize(
        "bad",
        [
            "300.0.0.0/8",
            "1.2.3/8",
            "1.2.3.4.5/8",
            "10.0.0.0/33",
            "2001:db8::/129",
            "2001:::db8/32",
            "01.2.3.4/8",
            "zz::/16",
            "10.0.0.0/x",
        ],
    )
    def test_parse_rejects_malformed(self, bad):
        with pytest.raises((PrefixError, ValueError)):
            Prefix.parse(bad)

    def test_constructor_rejects_host_bits(self):
        with pytest.raises(PrefixError):
            Prefix(AF_INET, 1, 24)

    def test_constructor_rejects_unknown_family(self):
        with pytest.raises(PrefixError):
            Prefix(5, 0, 0)


class TestFormatting:
    @pytest.mark.parametrize(
        "text",
        ["0.0.0.0/0", "10.0.0.0/8", "203.0.113.128/25", "255.255.255.255/32"],
    )
    def test_roundtrip_v4(self, text):
        assert str(Prefix.parse(text)) == text

    @pytest.mark.parametrize(
        "text",
        ["::/0", "2001:db8::/32", "fe80::1/128", "2001:db8:0:1::/64"],
    )
    def test_roundtrip_v6(self, text):
        assert str(Prefix.parse(text)) == text

    def test_v6_zero_compression_picks_longest_run(self):
        assert str(Prefix.parse("2001:0:0:1:0:0:0:1/128")) == "2001:0:0:1::1/128"


class TestRelations:
    def test_contains_more_specific(self):
        parent = Prefix.parse("10.0.0.0/8")
        child = Prefix.parse("10.1.0.0/16")
        assert parent.contains(child)
        assert not child.contains(parent)
        assert child in parent

    def test_contains_self(self):
        prefix = Prefix.parse("10.0.0.0/8")
        assert prefix.contains(prefix)

    def test_contains_rejects_other_family(self):
        assert not Prefix.parse("::/0").contains(Prefix.parse("0.0.0.0/0"))

    def test_overlaps(self):
        a = Prefix.parse("10.0.0.0/8")
        b = Prefix.parse("10.255.0.0/16")
        c = Prefix.parse("11.0.0.0/8")
        assert a.overlaps(b) and b.overlaps(a)
        assert not a.overlaps(c)

    def test_ordering_is_by_network_then_length(self):
        prefixes = [
            Prefix.parse("10.0.0.0/16"),
            Prefix.parse("10.0.0.0/8"),
            Prefix.parse("9.0.0.0/8"),
        ]
        ordered = sorted(prefixes)
        assert [str(p) for p in ordered] == [
            "9.0.0.0/8",
            "10.0.0.0/8",
            "10.0.0.0/16",
        ]


class TestSubdivision:
    def test_subnets_halving(self):
        halves = list(Prefix.parse("192.0.2.0/24").subnets())
        assert [str(p) for p in halves] == ["192.0.2.0/25", "192.0.2.128/25"]

    def test_subnets_to_depth(self):
        quarters = list(Prefix.parse("192.0.2.0/24").subnets(26))
        assert len(quarters) == 4
        assert str(quarters[-1]) == "192.0.2.192/26"

    def test_supernet(self):
        assert str(Prefix.parse("192.0.2.128/25").supernet()) == "192.0.2.0/24"

    def test_supernet_rejects_widening_error(self):
        with pytest.raises(PrefixError):
            Prefix.parse("10.0.0.0/8").supernet(16)

    def test_sibling(self):
        left = Prefix.parse("192.0.2.0/25")
        right = Prefix.parse("192.0.2.128/25")
        assert left.sibling() == right
        assert right.sibling() == left

    def test_sibling_of_zero_length_fails(self):
        with pytest.raises(PrefixError):
            Prefix.parse("0.0.0.0/0").sibling()

    def test_aggregate_siblings(self):
        left = Prefix.parse("192.0.2.0/25")
        assert str(aggregate(left, left.sibling())) == "192.0.2.0/24"

    def test_aggregate_non_siblings(self):
        assert aggregate(Prefix.parse("10.0.0.0/25"), Prefix.parse("10.0.1.0/25")) is None

    def test_bit_indexing(self):
        prefix = Prefix.parse("128.0.0.0/1")
        assert prefix.bit(0) == 1
        assert Prefix.parse("64.0.0.0/2").bit(1) == 1


class TestImmutability:
    def test_cannot_mutate(self):
        prefix = Prefix.parse("10.0.0.0/8")
        with pytest.raises(AttributeError):
            prefix.length = 9

    def test_hash_stable_across_equal_values(self):
        assert hash(Prefix.parse("10.0.0.0/8")) == hash(
            Prefix(AF_INET, 10 << 24, 8)
        )


# ----------------------------------------------------------------------
# Property-based tests
# ----------------------------------------------------------------------

v4_prefixes = st.builds(
    Prefix.from_host_bits,
    st.just(AF_INET),
    st.integers(min_value=0, max_value=(1 << 32) - 1),
    st.integers(min_value=0, max_value=32),
)
v6_prefixes = st.builds(
    Prefix.from_host_bits,
    st.just(AF_INET6),
    st.integers(min_value=0, max_value=(1 << 128) - 1),
    st.integers(min_value=0, max_value=128),
)
any_prefix = st.one_of(v4_prefixes, v6_prefixes)


@given(any_prefix)
def test_parse_format_roundtrip(prefix):
    assert Prefix.parse(str(prefix)) == prefix


@given(any_prefix)
def test_subnets_are_contained_and_disjoint(prefix):
    if prefix.length >= prefix.max_length:
        return
    left, right = prefix.subnets()
    assert prefix.contains(left) and prefix.contains(right)
    assert not left.overlaps(right)
    assert left.supernet() == prefix and right.supernet() == prefix


@given(any_prefix)
def test_sibling_is_involution(prefix):
    if prefix.length == 0:
        return
    assert prefix.sibling().sibling() == prefix
    assert aggregate(prefix, prefix.sibling()) == prefix.supernet()


@given(v4_prefixes, v4_prefixes)
def test_containment_antisymmetry(a, b):
    if a.contains(b) and b.contains(a):
        assert a == b
