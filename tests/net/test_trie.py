"""Tests for the prefix radix trie."""

import pytest
from hypothesis import given, strategies as st

from repro.net.prefix import AF_INET, Prefix
from repro.net.trie import PrefixTrie


def p(text):
    return Prefix.parse(text)


class TestBasics:
    def test_insert_get(self):
        trie = PrefixTrie(AF_INET)
        trie[p("10.0.0.0/8")] = "a"
        assert trie[p("10.0.0.0/8")] == "a"
        assert trie.get(p("11.0.0.0/8")) is None
        assert len(trie) == 1

    def test_replace_keeps_size(self):
        trie = PrefixTrie(AF_INET)
        trie[p("10.0.0.0/8")] = "a"
        trie[p("10.0.0.0/8")] = "b"
        assert len(trie) == 1 and trie[p("10.0.0.0/8")] == "b"

    def test_contains(self):
        trie = PrefixTrie(AF_INET)
        trie[p("10.0.0.0/8")] = "a"
        assert p("10.0.0.0/8") in trie
        assert p("10.0.0.0/16") not in trie  # exact match only

    def test_missing_raises_keyerror(self):
        with pytest.raises(KeyError):
            PrefixTrie(AF_INET)[p("10.0.0.0/8")]

    def test_family_mismatch_rejected(self):
        trie = PrefixTrie(AF_INET)
        with pytest.raises(ValueError):
            trie.insert(p("2001:db8::/32"), "x")

    def test_remove(self):
        trie = PrefixTrie(AF_INET)
        trie[p("10.0.0.0/8")] = "a"
        assert trie.remove(p("10.0.0.0/8")) == "a"
        assert len(trie) == 0
        with pytest.raises(KeyError):
            trie.remove(p("10.0.0.0/8"))

    def test_remove_keeps_descendants(self):
        trie = PrefixTrie(AF_INET)
        trie[p("10.0.0.0/8")] = "parent"
        trie[p("10.1.0.0/16")] = "child"
        trie.remove(p("10.0.0.0/8"))
        assert trie[p("10.1.0.0/16")] == "child"


class TestLongestMatch:
    def test_prefers_most_specific(self):
        trie = PrefixTrie(AF_INET)
        trie[p("10.0.0.0/8")] = "coarse"
        trie[p("10.1.0.0/16")] = "fine"
        match = trie.longest_match(p("10.1.2.0/24"))
        assert match == (p("10.1.0.0/16"), "fine")

    def test_falls_back_to_coarse(self):
        trie = PrefixTrie(AF_INET)
        trie[p("10.0.0.0/8")] = "coarse"
        trie[p("10.1.0.0/16")] = "fine"
        assert trie.longest_match(p("10.2.0.0/24"))[1] == "coarse"

    def test_no_match(self):
        trie = PrefixTrie(AF_INET)
        trie[p("10.0.0.0/8")] = "a"
        assert trie.longest_match(p("11.0.0.0/24")) is None

    def test_default_route_matches_everything(self):
        trie = PrefixTrie(AF_INET)
        trie[p("0.0.0.0/0")] = "default"
        assert trie.longest_match(p("203.0.113.0/24"))[1] == "default"


class TestZeroLengthPrefix:
    """The default route lives at the trie root — every operation must
    treat it as an ordinary (if zero-bit) entry."""

    DEFAULT = Prefix.from_host_bits(AF_INET, 0, 0)

    def test_insert_and_get(self):
        trie = PrefixTrie(AF_INET)
        trie[self.DEFAULT] = "default"
        assert trie[self.DEFAULT] == "default"
        assert self.DEFAULT in trie
        assert len(trie) == 1

    def test_longest_match_on_itself(self):
        trie = PrefixTrie(AF_INET)
        trie[self.DEFAULT] = "default"
        assert trie.longest_match(self.DEFAULT) == (self.DEFAULT, "default")

    def test_more_specific_wins_over_default(self):
        trie = PrefixTrie(AF_INET)
        trie[self.DEFAULT] = "default"
        trie[p("10.0.0.0/8")] = "ten"
        assert trie.longest_match(p("10.1.0.0/16"))[1] == "ten"
        assert trie.longest_match(p("192.0.2.0/24"))[1] == "default"

    def test_remove(self):
        trie = PrefixTrie(AF_INET)
        trie[self.DEFAULT] = "default"
        trie[p("10.0.0.0/8")] = "ten"
        assert trie.remove(self.DEFAULT) == "default"
        assert len(trie) == 1
        assert trie.longest_match(p("192.0.2.0/24")) is None
        assert trie[p("10.0.0.0/8")] == "ten"

    def test_matches_yields_default_first(self):
        trie = PrefixTrie(AF_INET)
        trie[self.DEFAULT] = "default"
        trie[p("10.0.0.0/8")] = "ten"
        found = list(trie.matches(p("10.0.0.0/24")))
        assert found == [(self.DEFAULT, "default"), (p("10.0.0.0/8"), "ten")]


class TestValuelessInteriorNodes:
    """LPM and matches() must skip interior nodes created only as
    branch points (inserting 10.0.0.0/9 and 10.128.0.0/9 materialises
    a valueless 10.0.0.0/8 node)."""

    def build(self):
        trie = PrefixTrie(AF_INET)
        trie[p("10.0.0.0/9")] = "low"
        trie[p("10.128.0.0/9")] = "high"
        return trie

    def test_longest_match_skips_branch_point(self):
        trie = self.build()
        assert trie.longest_match(p("10.0.1.0/24"))[1] == "low"
        assert trie.longest_match(p("10.200.0.0/16"))[1] == "high"
        # The valueless /8 interior node must not answer for a probe
        # that only reaches it.
        assert trie.longest_match(p("10.0.0.0/8")) is None

    def test_longest_match_descends_past_removed_value(self):
        trie = PrefixTrie(AF_INET)
        trie[p("10.0.0.0/8")] = "eight"
        trie[p("10.0.0.0/16")] = "sixteen"
        trie.remove(p("10.0.0.0/8"))
        assert trie.longest_match(p("10.0.0.0/24")) == (
            p("10.0.0.0/16"),
            "sixteen",
        )
        assert trie.longest_match(p("10.5.0.0/16")) is None

    def test_matches_skips_branch_point(self):
        trie = self.build()
        trie[p("10.0.0.0/16")] = "fine"
        found = list(trie.matches(p("10.0.0.0/24")))
        assert found == [
            (p("10.0.0.0/9"), "low"),
            (p("10.0.0.0/16"), "fine"),
        ]


class TestMatches:
    def test_shortest_first_chain(self):
        trie = PrefixTrie(AF_INET)
        for text in ("10.0.0.0/8", "10.0.0.0/16", "10.0.0.0/24"):
            trie[p(text)] = text
        found = [str(k) for k, _ in trie.matches(p("10.0.0.0/24"))]
        assert found == ["10.0.0.0/8", "10.0.0.0/16", "10.0.0.0/24"]

    def test_siblings_not_matched(self):
        trie = PrefixTrie(AF_INET)
        trie[p("10.0.0.0/8")] = "a"
        trie[p("11.0.0.0/8")] = "b"
        assert [v for _, v in trie.matches(p("10.1.0.0/16"))] == ["a"]

    def test_no_match(self):
        trie = PrefixTrie(AF_INET)
        trie[p("10.0.0.0/8")] = "a"
        assert list(trie.matches(p("192.0.2.0/24"))) == []

    def test_family_mismatch_rejected(self):
        trie = PrefixTrie(AF_INET)
        with pytest.raises(ValueError):
            list(trie.matches(p("2001:db8::/32")))


class TestTraversal:
    def test_items_in_network_order(self):
        trie = PrefixTrie(AF_INET)
        for text in ("10.0.0.0/8", "9.0.0.0/8", "10.0.0.0/16"):
            trie[p(text)] = text
        assert [str(k) for k, _ in trie.items()] == [
            "9.0.0.0/8",
            "10.0.0.0/8",
            "10.0.0.0/16",
        ]

    def test_covered(self):
        trie = PrefixTrie(AF_INET)
        for text in ("10.0.0.0/8", "10.1.0.0/16", "11.0.0.0/8"):
            trie[p(text)] = text
        covered = {str(k) for k, _ in trie.covered(p("10.0.0.0/8"))}
        assert covered == {"10.0.0.0/8", "10.1.0.0/16"}


# ----------------------------------------------------------------------
# Model-based property test against a plain dict.
# ----------------------------------------------------------------------

prefix_strategy = st.builds(
    Prefix.from_host_bits,
    st.just(AF_INET),
    st.integers(min_value=0, max_value=(1 << 32) - 1),
    st.integers(min_value=0, max_value=32),
)


@given(st.lists(st.tuples(prefix_strategy, st.integers()), max_size=40))
def test_matches_dict_model(operations):
    trie = PrefixTrie(AF_INET)
    model = {}
    for prefix, value in operations:
        trie[prefix] = value
        model[prefix] = value
    assert len(trie) == len(model)
    for prefix, value in model.items():
        assert trie[prefix] == value
    assert dict(trie.items()) == model


@given(st.lists(prefix_strategy, min_size=1, max_size=30, unique=True))
def test_matches_agrees_with_bruteforce(prefixes):
    trie = PrefixTrie(AF_INET)
    for prefix in prefixes:
        trie[prefix] = str(prefix)
    probe = prefixes[0]
    expected = sorted(
        (candidate for candidate in prefixes if candidate.contains(probe)),
        key=lambda c: c.length,
    )
    assert [found for found, _ in trie.matches(probe)] == expected


@given(st.lists(prefix_strategy, min_size=1, max_size=30, unique=True))
def test_longest_match_agrees_with_bruteforce(prefixes):
    trie = PrefixTrie(AF_INET)
    for prefix in prefixes:
        trie[prefix] = str(prefix)
    probe = prefixes[0]
    expected = max(
        (candidate for candidate in prefixes if candidate.contains(probe)),
        key=lambda c: c.length,
        default=None,
    )
    found = trie.longest_match(probe)
    if expected is None:
        assert found is None
    else:
        assert found[0] == expected
