"""Cross-validation of Prefix against the stdlib ``ipaddress`` module.

Our integer-based Prefix is independent of ``ipaddress``; these
property tests confirm the two implementations agree on parsing,
formatting, containment and subnetting.
"""

import ipaddress

from hypothesis import given, strategies as st

from repro.net.prefix import AF_INET, AF_INET6, Prefix

v4_networks = st.builds(
    lambda value, length: ipaddress.ip_network((value, length), strict=False),
    st.integers(min_value=0, max_value=(1 << 32) - 1),
    st.integers(min_value=0, max_value=32),
)
v6_networks = st.builds(
    lambda value, length: ipaddress.ip_network((value, length), strict=False),
    st.integers(min_value=0, max_value=(1 << 128) - 1),
    st.integers(min_value=0, max_value=128),
)
any_network = st.one_of(v4_networks, v6_networks)


@given(any_network)
def test_parse_agrees_with_ipaddress(network):
    ours = Prefix.parse(str(network))
    assert ours.network == int(network.network_address)
    assert ours.length == network.prefixlen
    assert ours.family == (AF_INET if network.version == 4 else AF_INET6)


@given(any_network)
def test_format_round_trips_through_ipaddress(network):
    ours = Prefix.parse(str(network))
    assert ipaddress.ip_network(str(ours)) == network


@given(v4_networks, v4_networks)
def test_containment_agrees(a, b):
    ours_a = Prefix.parse(str(a))
    ours_b = Prefix.parse(str(b))
    assert ours_a.contains(ours_b) == b.subnet_of(a)


@given(v4_networks)
def test_subnets_agree(network):
    if network.prefixlen >= 32:
        return
    ours = Prefix.parse(str(network))
    expected = [str(s) for s in network.subnets()]
    assert [str(s) for s in ours.subnets()] == expected


@given(v6_networks)
def test_supernet_agrees(network):
    if network.prefixlen == 0:
        return
    ours = Prefix.parse(str(network))
    assert str(ours.supernet()) == str(network.supernet())
