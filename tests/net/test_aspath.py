"""Tests for repro.net.aspath."""

import pytest
from hypothesis import given, strategies as st

from repro.net.aspath import ASPath, EMPTY_PATH, PathSegment, SegmentType


class TestSegments:
    def test_sequence_preserves_order(self):
        segment = PathSegment(SegmentType.AS_SEQUENCE, [3, 1, 2])
        assert segment.asns == (3, 1, 2)

    def test_set_canonicalises(self):
        a = PathSegment(SegmentType.AS_SET, [3, 1, 2, 1])
        b = PathSegment(SegmentType.AS_SET, [1, 2, 3])
        assert a == b and hash(a) == hash(b)

    def test_empty_segment_rejected(self):
        with pytest.raises(ValueError):
            PathSegment(SegmentType.AS_SEQUENCE, [])


class TestConstructionAndParsing:
    def test_from_asns(self):
        path = ASPath.from_asns([100, 200, 300])
        assert str(path) == "100 200 300"
        assert path.origin == 300
        assert path.peer == 100

    def test_empty(self):
        assert EMPTY_PATH.is_empty
        assert EMPTY_PATH.origin is None
        assert not EMPTY_PATH

    def test_parse_plain(self):
        assert ASPath.parse("1 2 3") == ASPath.from_asns([1, 2, 3])

    def test_parse_braces_set(self):
        path = ASPath.parse("1 2 {3,4}")
        assert path.has_set
        assert path.segments[-1] == PathSegment(SegmentType.AS_SET, [3, 4])

    def test_parse_bracket_set(self):
        # The paper writes AS_SETs as "1 2 [3 4 5]".
        path = ASPath.parse("1 2 [3 4 5]")
        assert path.set_sizes() == [3]

    def test_parse_roundtrip(self):
        text = "1 2 [3 4]"
        assert str(ASPath.parse(text)) == text

    def test_parse_empty(self):
        assert ASPath.parse("") == EMPTY_PATH

    def test_parse_rejects_garbage(self):
        with pytest.raises(ValueError):
            ASPath.parse("1 2 x")
        with pytest.raises(ValueError):
            ASPath.parse("1 [2 3")


class TestAccessors:
    def test_hop_count_counts_set_as_one(self):
        # RFC 4271: an AS_SET counts as a single hop.
        assert ASPath.parse("1 2 {3,4}").hop_count() == 3

    def test_hop_count_counts_prepends(self):
        assert ASPath.from_asns([1, 2, 2, 2, 3]).hop_count() == 5

    def test_origin_none_when_tail_is_set(self):
        assert ASPath.parse("1 {2,3}").origin is None

    def test_contains_asn(self):
        path = ASPath.parse("1 2 {3,4}")
        assert path.contains_asn(4)
        assert not path.contains_asn(9)


class TestPrepending:
    def test_strip_prepending(self):
        path = ASPath.from_asns([1, 2, 2, 2, 3, 3])
        assert path.strip_prepending() == (1, 2, 3)

    def test_strip_keeps_nonadjacent_duplicates(self):
        assert ASPath.from_asns([1, 2, 1]).strip_prepending() == (1, 2, 1)

    def test_prepend_counts(self):
        assert ASPath.from_asns([1, 2, 2, 3]).prepend_counts() == [
            (1, 1),
            (2, 2),
            (3, 1),
        ]

    def test_has_prepending(self):
        assert ASPath.from_asns([1, 2, 2]).has_prepending
        assert not ASPath.from_asns([1, 2, 3]).has_prepending

    def test_has_loop(self):
        assert ASPath.from_asns([1, 2, 1]).has_loop()
        assert not ASPath.from_asns([1, 2, 2, 3]).has_loop()


class TestAsSetHandling:
    def test_expand_singleton(self):
        path = ASPath.parse("1 2 {3}")
        expanded = path.expand_singleton_sets()
        assert expanded == ASPath.from_asns([1, 2, 3])
        assert not expanded.has_set

    def test_expand_keeps_multi_element_sets(self):
        # §2.4.4: larger sets are preserved (callers drop these paths).
        path = ASPath.parse("1 {2} 3 {4,5}")
        expanded = path.expand_singleton_sets()
        assert expanded.has_set
        assert str(expanded) == "1 2 3 [4 5]"

    def test_expand_noop_without_sets(self):
        path = ASPath.from_asns([1, 2])
        assert path.expand_singleton_sets() is path


class TestEqualityAndKeys:
    def test_key_distinguishes_set_from_sequence(self):
        assert ASPath.parse("1 2 3").key() != ASPath.parse("1 2 {3}").key()

    def test_prepended_paths_are_distinct(self):
        # Method (iii) relies on raw paths with prepending being distinct.
        assert ASPath.from_asns([1, 2, 3]) != ASPath.from_asns([1, 2, 2, 3])

    def test_usable_as_dict_key(self):
        table = {ASPath.from_asns([1, 2]): "a"}
        assert table[ASPath.parse("1 2")] == "a"


asn_lists = st.lists(st.integers(min_value=1, max_value=2**32 - 1), min_size=1, max_size=8)


@given(asn_lists)
def test_parse_format_roundtrip(asns):
    path = ASPath.from_asns(asns)
    assert ASPath.parse(str(path)) == path


@given(asn_lists)
def test_strip_prepending_is_idempotent(asns):
    stripped = ASPath.from_asns(asns).strip_prepending()
    assert ASPath.from_asns(stripped).strip_prepending() == stripped


@given(asn_lists)
def test_strip_prepending_preserves_endpoints(asns):
    path = ASPath.from_asns(asns)
    stripped = path.strip_prepending()
    assert stripped[0] == asns[0]
    assert stripped[-1] == asns[-1]
    assert len(stripped) <= len(asns)
